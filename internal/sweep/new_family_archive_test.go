package sweep

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/archive"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// specPoint archives one scenario-built point: the spec (parameterized
// by params[0]) builds through the family registry, streams through the
// shared accumulators, and lands in the record. Deterministic in
// (i, params) only — the bitwise resume property.
func specPoint(mk func(p float64) *scenario.Spec) ArchivePointFunc {
	return func(_ context.Context, _ int, params []float64, rec *archive.RecordWriter) error {
		sys, tEnd, nSamples, err := mk(params[0]).BuildSystem()
		if err != nil {
			return err
		}
		sum, err := sim.RunSummaryTo(sys, tEnd, nSamples, 0, 0, rec)
		if err != nil {
			return err
		}
		return rec.Finish(sum.Vector(), nil)
	}
}

// newFamilyCases returns one archive-sweep setup per PR-5 family:
// torus2d sweeps the desync horizon, linstab the scan endpoint, cluster
// the injected delay. Every spec is small enough to keep the three
// interrupted+clean sweeps fast.
func newFamilyCases() map[string]struct {
	gen func(i int) []float64
	mk  func(p float64) *scenario.Spec
} {
	return map[string]struct {
		gen func(i int) []float64
		mk  func(p float64) *scenario.Spec
	}{
		"torus2d": {
			gen: func(i int) []float64 { return []float64{1.0 + 0.05*float64(i)} },
			mk: func(p float64) *scenario.Spec {
				s := scenario.Torus2DScenario(4, 3, p)
				s.TEnd = 5
				s.Samples = 9
				return s
			},
		},
		"linstab": {
			gen: func(i int) []float64 { return []float64{0.5 + 0.25*float64(i)} },
			mk: func(p float64) *scenario.Spec {
				s := scenario.LinstabScenario(8, 1.5)
				s.Linstab.To = p
				s.Linstab.Points = 5
				s.Samples = 9
				return s
			},
		},
		"cluster": {
			gen: func(i int) []float64 { return []float64{0.1 + 0.05*float64(i)} },
			mk: func(p float64) *scenario.Spec {
				s := scenario.ClusterScenario(6, 6)
				s.Cluster.Delays[0].Extra = p
				s.Samples = 9 // t_end 0: each point adopts its makespan
				return s
			},
		},
	}
}

// TestRunArchiveNewFamiliesSmoke archives a small sweep per new family
// and reads every record back: rows and the 8-entry metric vector are
// present and the params round-trip.
func TestRunArchiveNewFamiliesSmoke(t *testing.T) {
	for name, tc := range newFamilyCases() {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			const n = 4
			stats, err := RunArchive(context.Background(), dir, n, 2, tc.gen, specPoint(tc.mk))
			if err != nil {
				t.Fatal(err)
			}
			if stats.Archived != n {
				t.Fatalf("stats = %+v", stats)
			}
			a, err := archive.OpenDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()
			for i := 0; i < n; i++ {
				rec, err := a.Read(uint64(i))
				if err != nil {
					t.Fatal(err)
				}
				if rec.NSamples() != 9 {
					t.Fatalf("record %d: %d samples, want 9", i, rec.NSamples())
				}
				if rec.Params[0] != tc.gen(i)[0] {
					t.Fatalf("record %d params = %v", i, rec.Params)
				}
				if len(rec.Metrics) != 8 {
					t.Fatalf("record %d metrics = %v", i, rec.Metrics)
				}
			}
		})
	}
}

// TestRunArchiveNewFamiliesResumeBitwise is the acceptance pin for the
// three new families: a sweep interrupted mid-flight and resumed with a
// different worker count reads back record-for-record bitwise-identical
// to an uninterrupted archive — streaming, archiving, and resume come
// with the registry for free.
func TestRunArchiveNewFamiliesResumeBitwise(t *testing.T) {
	for name, tc := range newFamilyCases() {
		t.Run(name, func(t *testing.T) {
			const n = 6
			point := specPoint(tc.mk)

			interrupted := t.TempDir()
			ctx, cancel := context.WithCancel(context.Background())
			var ran atomic.Int64
			_, err := RunArchive(ctx, interrupted, n, 2, tc.gen,
				func(ctx context.Context, i int, params []float64, rec *archive.RecordWriter) error {
					if ran.Add(1) == 3 {
						cancel()
					}
					return point(ctx, i, params, rec)
				})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
			}
			if _, err := RunArchive(context.Background(), interrupted, n, 3, tc.gen, point); err != nil {
				t.Fatal(err)
			}

			clean := t.TempDir()
			if _, err := RunArchive(context.Background(), clean, n, 4, tc.gen, point); err != nil {
				t.Fatal(err)
			}

			ai, err := archive.OpenDir(interrupted)
			if err != nil {
				t.Fatal(err)
			}
			defer ai.Close()
			ac, err := archive.OpenDir(clean)
			if err != nil {
				t.Fatal(err)
			}
			defer ac.Close()
			if ai.Len() != n || ac.Len() != n {
				t.Fatalf("archives hold %d / %d points, want %d", ai.Len(), ac.Len(), n)
			}
			for i := 0; i < n; i++ {
				pi, err1 := ai.ReadRaw(uint64(i))
				pc, err2 := ac.ReadRaw(uint64(i))
				if err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				if !bytes.Equal(pi, pc) {
					t.Fatalf("%s record %d differs between resumed and uninterrupted archives", name, i)
				}
			}
		})
	}
}
