package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Point is one parameter point of a sweep: an opaque input produced by
// the caller's grid.
type Point[P, R any] struct {
	// Index is the position in the input grid.
	Index int
	// Param is the input parameter value.
	Param P
	// Result is the worker's output (zero when Err != nil).
	Result R
	// Err is the per-point failure, if any.
	Err error
}

// Run evaluates fn over params using at most workers goroutines (0 means
// GOMAXPROCS). The returned slice is ordered like params. The first
// error cancels outstanding work and is returned alongside the partial
// results; points that never ran carry ctx.Err().
//
// Error reporting is deterministic under cancellation: a point that
// merely echoes the cancellation (returns ctx.Err() after the context
// was canceled) never becomes the sweep error, so a genuine point
// failure racing the cancel is always the one reported, and a sweep
// canceled from outside reports plain ctx.Err() rather than an
// arbitrary "point N: context canceled".
func Run[P, R any](ctx context.Context, params []P, workers int, fn func(ctx context.Context, p P) (R, error)) ([]Point[P, R], error) {
	if fn == nil {
		return nil, errors.New("sweep: nil worker function")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(params) {
		workers = len(params)
	}
	out := make([]Point[P, R], len(params))
	for i, p := range params {
		out[i] = Point[P, R]{Index: i, Param: p}
	}
	if len(params) == 0 {
		return out, nil
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	idx := make(chan int)
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					out[i].Err = ctx.Err()
					continue
				}
				r, err := call(ctx, fn, out[i].Param)
				out[i].Result = r
				out[i].Err = err
				if err != nil && !isCancelEcho(ctx, err) {
					errOnce.Do(func() {
						firstErr = fmt.Errorf("sweep: point %d: %w", i, err)
						cancel()
					})
				}
			}
		}()
	}
	for i := range params {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if firstErr != nil {
		return out, firstErr
	}
	return out, parent.Err()
}

// isCancelEcho reports whether err is just the sweep's own cancellation
// reflected back by a worker: a context error returned after ctx was
// already canceled. Such echoes are racy in which point surfaces them
// first, so they are never promoted to the sweep error; a context error
// returned while ctx is still live is a genuine point failure (e.g. the
// point's own deadline) and is reported normally.
func isCancelEcho(ctx context.Context, err error) bool {
	return (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) &&
		ctx.Err() != nil
}

// call invokes fn with a panic guard: a panicking point surfaces as a
// per-point error instead of killing its worker goroutine. An unguarded
// panic would unwind the worker's range loop, the unbuffered idx channel
// would lose a receiver, and the feeder — and with it Run — would block
// forever once every worker had died.
func call[P, R any](ctx context.Context, fn func(context.Context, P) (R, error), p P) (r R, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("worker panicked: %v", rec)
		}
	}()
	return fn(ctx, p)
}

// RunReduce evaluates a generated sweep in streaming-reduction mode: point
// i's parameter comes from gen(i), each completed result is handed to
// reduce, and nothing else is retained — live memory is O(workers),
// independent of n. This is the batch mode million-point studies pair with
// core.Model.RunStream, where each point returns only an O(N) summary.
//
// reduce is called from worker goroutines serialized by an internal mutex,
// in completion order; use the point index to place order-sensitive
// output. The first error (including a recovered worker panic) cancels
// outstanding work, and points canceled before running are never reported
// to reduce. Like Run, cancellation echoes from workers are never
// promoted to the sweep error: a genuine point failure racing an
// external cancel is reported deterministically, and a purely external
// cancel returns plain ctx.Err().
func RunReduce[P, R any](ctx context.Context, n, workers int, gen func(i int) P, fn func(ctx context.Context, p P) (R, error), reduce func(i int, p P, r R)) error {
	if fn == nil {
		return errors.New("sweep: nil worker function")
	}
	if gen == nil {
		return errors.New("sweep: nil point generator")
	}
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	idx := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	var errOnce sync.Once

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					continue
				}
				p, r, err := callGen(ctx, gen, fn, i)
				if err == nil && reduce != nil {
					err = callReduce(&mu, reduce, i, p, r)
				}
				if err != nil && !isCancelEcho(ctx, err) {
					errOnce.Do(func() {
						firstErr = fmt.Errorf("sweep: point %d: %w", i, err)
						cancel()
					})
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return parent.Err()
}

// callReduce runs the reduction for one completed point under the mutex,
// with the same panic guard as the worker function: a panicking reduce
// cancels the sweep as an error instead of crashing the process (and the
// deferred unlock keeps the mutex usable either way).
func callReduce[P, R any](mu *sync.Mutex, reduce func(int, P, R), i int, p P, r R) (err error) {
	mu.Lock()
	defer mu.Unlock()
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("reduce panicked: %v", rec)
		}
	}()
	reduce(i, p, r)
	return nil
}

// callGen generates and evaluates point i under the same panic guard as
// call, so a panic in either gen or fn cancels the sweep cleanly.
func callGen[P, R any](ctx context.Context, gen func(int) P, fn func(context.Context, P) (R, error), i int) (p P, r R, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("worker panicked: %v", rec)
		}
	}()
	p = gen(i)
	r, err = fn(ctx, p)
	return
}

// Results extracts the result values of a fully successful sweep; it
// returns the first per-point error otherwise.
func Results[P, R any](points []Point[P, R]) ([]R, error) {
	out := make([]R, len(points))
	for i, p := range points {
		if p.Err != nil {
			return nil, p.Err
		}
		out[i] = p.Result
	}
	return out, nil
}

// Grid1 builds a float64 grid from lo to hi with n points (inclusive).
func Grid1(lo, hi float64, n int) []float64 {
	if n < 1 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// Pair is a 2-D grid point.
type Pair struct{ A, B float64 }

// Grid2 builds the cross product of two 1-D grids in row-major order.
func Grid2(as, bs []float64) []Pair {
	out := make([]Pair, 0, len(as)*len(bs))
	for _, a := range as {
		for _, b := range bs {
			out = append(out, Pair{A: a, B: b})
		}
	}
	return out
}
