package sweep

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/archive"
	"repro/internal/failpoint"
)

// DefaultStaleTmpTTL is how old an in-progress *.tmp shard must be
// before archive runs treat it as crash litter and remove it. Temps
// younger than this are presumed to belong to a live writer sharing
// the directory (a distributed-sweep worker in another process) and
// are never touched; lease-coordinated runs pass their lease TTL
// instead, which bounds how long a dead worker's litter lingers.
//
// Age alone cannot distinguish a dead writer from a live one whose
// current point simply computes for longer than the TTL without
// flushing any bytes, so every run also freshens its open tmps'
// mtimes on a timer well inside the TTL (see tmpKeepalive): only a
// writer that stopped existing lets its tmp age out.
const DefaultStaleTmpTTL = 10 * time.Minute

// ArchiveStats summarizes one RunArchive call.
type ArchiveStats struct {
	// Archived counts the points newly written by this call.
	Archived int
	// Skipped counts the points already present from earlier runs and
	// skipped by resume.
	Skipped int
	// Shards counts the shard files this call sealed (empty shards are
	// aborted, not sealed).
	Shards int
}

// ArchivePointFunc evaluates one sweep point and writes its output
// through the open archive record: stream sample rows via rec (it is a
// core.Sink — hand it to Model.RunStream or tee it with the summary
// accumulators), then seal the record with rec.Finish. A record left
// unsealed by a nil return is an error; on a non-nil return the record
// is rolled back so the shard keeps no partial data.
type ArchivePointFunc func(ctx context.Context, i int, params []float64, rec *archive.RecordWriter) error

// RunArchive evaluates a generated sweep in archive mode: point i's
// parameter vector comes from gen(i) and its full output — sample rows
// included — is persisted into dir instead of being reduced. It is the
// disk-backed counterpart of RunReduce for sweeps whose per-point
// trajectories must survive for post-hoc analysis.
//
// Each worker owns one shard file, so record writes are lock-free; a
// shard becomes visible under its final name only through an atomic
// rename when it is sealed, so an interrupted run leaves complete
// shards plus ignorable *.tmp litter (removed by a later call once it
// is older than DefaultStaleTmpTTL — live runs keep their open temps'
// mtimes fresh, so a tmp that old belongs to no one).
// RunArchive is resumable: it scans the completed shards already in dir
// and skips their point indices, so re-running after a crash or cancel
// archives exactly the missing points. Record payloads depend only on
// (i, params, fn), not on worker count or shard layout, so a resumed
// archive is bitwise-identical record-for-record to an uninterrupted
// one.
//
// Cancellation and errors follow RunReduce: the first genuine point
// error cancels the sweep and is reported deterministically (echoes of
// the cancellation never win), an externally canceled run returns
// ctx.Err(). Either way every worker rolls back its in-progress record
// and seals (or, when empty, removes) its shard — no truncated files
// are left behind.
func RunArchive(ctx context.Context, dir string, n, workers int, gen func(i int) []float64, fn ArchivePointFunc) (ArchiveStats, error) {
	return ArchiveRun{Dir: dir, Hi: n, Workers: workers}.Run(ctx, gen, fn)
}

// ArchiveRun configures one archive-mode sweep over the point-index
// range [Lo, Hi). The zero value plus Dir and Hi reproduces RunArchive;
// the extra knobs exist for lease-coordinated distributed runs
// (internal/dsweep), where several processes share one directory and a
// worker must be able to restrict itself to its leased range, leave
// other writers' files alone, and fence its commits against a lost
// lease.
type ArchiveRun struct {
	// Dir is the shared archive directory.
	Dir string
	// Lo and Hi bound the half-open point-index range to archive.
	Lo, Hi int
	// Workers is the worker-goroutine count (0 = GOMAXPROCS).
	Workers int
	// StaleTmpAfter gates crash-litter cleanup: *.tmp shards younger
	// than this are presumed to belong to a live writer sharing the
	// directory and are left alone. 0 means DefaultStaleTmpTTL; a
	// negative value disables cleanup entirely. The run keeps its own
	// open tmps fresh (mtime bumps every StaleTmpAfter/4), so the gate
	// stays safe no matter how long one point computes — but every run
	// sharing a directory must use the same value, or a sharer with a
	// shorter TTL could outpace a slower sharer's keepalive.
	StaleTmpAfter time.Duration
	// DiscardOnCancel aborts (instead of seals) every worker's shard
	// when the run ends canceled. Lease-coordinated runs need this: a
	// worker whose lease was lost must not publish records another
	// worker may be re-archiving, or the directory would hold the same
	// point twice.
	DiscardOnCancel bool
	// BeforeSeal, when non-nil, runs immediately before each non-empty
	// shard is sealed; a non-nil error aborts the shard instead of
	// committing it. Distributed workers use it as a fencing check
	// ("do I still hold the lease?") at the last possible moment.
	BeforeSeal func() error
	// Codec selects the record codec of the shards this run writes.
	// The zero value is the archive default (delta compression);
	// resumed runs may mix codecs freely in one directory, since every
	// record is self-describing and resume matches on point indices,
	// not bytes.
	Codec archive.Codec
}

// Run executes the configured archive sweep. Semantics match
// RunArchive, restricted to [Lo, Hi): TTL-gated tmp cleanup, resume by
// index scan, per-worker shards claimed collision-tolerantly
// (archive.CreateAny), deterministic error reporting, and — under
// fault injection — a simulated crash abandons the worker's shard
// exactly as a killed process would: no rollback, no seal, litter left
// in place.
func (r ArchiveRun) Run(ctx context.Context, gen func(i int) []float64, fn ArchivePointFunc) (ArchiveStats, error) {
	var stats ArchiveStats
	if fn == nil {
		return stats, errors.New("sweep: nil point function")
	}
	if gen == nil {
		return stats, errors.New("sweep: nil point generator")
	}
	if r.Dir == "" {
		return stats, errors.New("sweep: empty archive directory")
	}
	if r.Lo < 0 || r.Hi < r.Lo {
		return stats, fmt.Errorf("sweep: bad point range [%d, %d)", r.Lo, r.Hi)
	}
	if r.Hi == r.Lo {
		return stats, nil
	}
	dir := r.Dir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return stats, fmt.Errorf("sweep: %w", err)
	}
	if err := r.cleanStaleTmps(); err != nil {
		return stats, err
	}
	// Resume: collect the in-range indices already archived by
	// completed shards.
	done := make(map[int]bool)
	prev, err := archive.OpenDir(dir)
	if err != nil {
		return stats, fmt.Errorf("sweep: scanning archive for resume: %w", err)
	}
	for _, idx := range prev.Indices() {
		if idx >= uint64(r.Lo) && idx < uint64(r.Hi) {
			done[int(idx)] = true
		}
	}
	_ = prev.Close() // read-only close; the index set is already in hand
	stats.Skipped = len(done)
	remaining := r.Hi - r.Lo - stats.Skipped
	if remaining == 0 {
		return stats, nil
	}
	base, err := archive.NextShard(dir)
	if err != nil {
		return stats, fmt.Errorf("sweep: %w", err)
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > remaining {
		workers = remaining
	}
	// Keep this run's open tmps visibly alive: a sharer's age-gated
	// cleanup must never mistake them for crash litter, even when a
	// single point computes past the TTL without flushing a byte.
	keep := startTmpKeepalive(r.staleTmpTTL() / 4)
	defer keep.close()

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	idx := make(chan int)
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	var archived, sealedShards atomic.Int64
	fail := func(format string, args ...any) {
		errOnce.Do(func() {
			firstErr = fmt.Errorf(format, args...)
			cancel()
		})
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(claim int) {
			defer wg.Done()
			var aw *archive.Writer
			defer func() {
				if aw != nil {
					// From here the shard is sealed, aborted, or (on a
					// simulated crash) genuine litter — stop refreshing it.
					keep.forget(aw.TmpPath())
				}
				if rec := recover(); rec != nil {
					c, ok := failpoint.AsCrash(rec)
					if !ok {
						panic(rec)
					}
					// Simulated process death: abandon everything as
					// the crash left it — no rollback, no seal, no
					// tmp cleanup. Resume redoes the lost points.
					fail("sweep: worker crashed: %w", c)
					return
				}
				if aw == nil {
					return
				}
				if aw.Len() == 0 {
					_ = aw.Abort()
					return
				}
				if r.DiscardOnCancel && ctx.Err() != nil {
					// The run was canceled (lease lost, sibling crash,
					// caller abort): publishing this shard could race a
					// re-leasing worker into duplicate indices, so the
					// records are discarded and redone later.
					_ = aw.Abort()
					return
				}
				if r.BeforeSeal != nil {
					if err := r.BeforeSeal(); err != nil {
						_ = aw.Abort()
						fail("sweep: pre-seal check: %w", err)
						return
					}
				}
				// Seal the shard even when the sweep failed: its records
				// are complete points, and preserving them is what makes
				// the next run resume instead of redoing the work.
				if err := aw.Close(); err != nil {
					fail("sweep: sealing shard: %w", err)
					return
				}
				sealedShards.Add(1)
			}()
			var err error
			aw, err = archive.CreateAnyWith(dir, claim, r.Codec)
			if err != nil {
				fail("sweep: creating shard: %w", err)
				return
			}
			keep.watch(aw.TmpPath())
			for i := range idx {
				if ctx.Err() != nil {
					continue
				}
				if err := archivePoint(ctx, aw, i, gen, fn); err != nil {
					if !isCancelEcho(ctx, err) {
						fail("sweep: point %d: %w", i, err)
					}
					continue
				}
				archived.Add(1)
			}
		}(base + w)
	}
feed:
	for i := r.Lo; i < r.Hi; i++ {
		if done[i] {
			continue
		}
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	stats.Archived = int(archived.Load())
	stats.Shards = int(sealedShards.Load())
	if firstErr != nil {
		return stats, firstErr
	}
	return stats, parent.Err()
}

// staleTmpTTL resolves the effective crash-litter age gate. A negative
// StaleTmpAfter disables this run's cleanup, but the default still
// paces the keepalive: sharers may clean with gates of their own.
func (r ArchiveRun) staleTmpTTL() time.Duration {
	if r.StaleTmpAfter > 0 {
		return r.StaleTmpAfter
	}
	return DefaultStaleTmpTTL
}

// cleanStaleTmps removes crash litter: in-progress shards of a dead
// run that never reached their atomic rename. Their points were never
// marked done, so removing them loses nothing — but when two processes
// share a directory, a *.tmp younger than the TTL is presumed to be a
// live worker's open shard and is never touched. Live workers freshen
// their tmps' mtimes from inside the TTL (tmpKeepalive), so age is a
// faithful death certificate, not a guess about compute speed.
//
//pomvet:allow wallclock tmp staleness is judged by real file age because a dead sharing process can only be detected by wall-clock time passing
func (r ArchiveRun) cleanStaleTmps() error {
	if r.StaleTmpAfter < 0 {
		return nil
	}
	ttl := r.staleTmpTTL()
	tmps, err := filepath.Glob(archive.TmpPattern(r.Dir))
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	now := time.Now()
	for _, tmp := range tmps {
		fi, err := os.Stat(tmp)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue // another sharer cleaned it first
			}
			return fmt.Errorf("sweep: %w", err)
		}
		if now.Sub(fi.ModTime()) < ttl {
			continue // presumed live writer
		}
		if err := os.Remove(tmp); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("sweep: removing stale %s: %w", tmp, err)
		}
	}
	return nil
}

// tmpKeepalive periodically freshens the mtime of every watched
// in-progress shard so a sharing run's age-gated cleanup never
// mistakes a live writer's tmp for crash litter — without it, a point
// that computes longer than the TTL between flushes would let the tmp
// age out while its writer is still alive, and a sibling would delete
// (and then collide with) the open shard. Ticking at a quarter of the
// TTL leaves a 4x margin over scheduling stalls.
type tmpKeepalive struct {
	mu    sync.Mutex
	paths map[string]struct{}
	stop  chan struct{}
	done  chan struct{}
}

// startTmpKeepalive launches the refresh loop at the given period.
//
//pomvet:allow wallclock keepalive must freshen tmp mtimes in real time so sibling processes' TTL-gated cleanup sees this writer as alive; simulation output never observes these clocks
func startTmpKeepalive(period time.Duration) *tmpKeepalive {
	// A floor keeps a deliberately tiny TTL (tests force-expiring
	// everything) from turning the loop into a busy spin.
	const minPeriod = 10 * time.Millisecond
	if period < minPeriod {
		period = minPeriod
	}
	k := &tmpKeepalive{
		paths: make(map[string]struct{}),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go func() {
		defer close(k.done)
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-k.stop:
				return
			case <-t.C:
			}
			now := time.Now()
			k.mu.Lock()
			paths := make([]string, 0, len(k.paths))
			for p := range k.paths {
				paths = append(paths, p)
			}
			k.mu.Unlock()
			sort.Strings(paths)
			for _, p := range paths {
				// Best-effort: a tmp sealed or aborted since the snapshot
				// is gone, and freshening a reused name is harmless (it
				// either belongs to a live sharer or ages out next TTL).
				_ = os.Chtimes(p, now, now)
			}
		}
	}()
	return k
}

// watch registers an open shard's tmp path for refreshing.
func (k *tmpKeepalive) watch(path string) {
	k.mu.Lock()
	k.paths[path] = struct{}{}
	k.mu.Unlock()
}

// forget stops refreshing a sealed, aborted, or abandoned tmp path.
func (k *tmpKeepalive) forget(path string) {
	k.mu.Lock()
	delete(k.paths, path)
	k.mu.Unlock()
}

// close stops the refresh loop and waits for it to exit.
func (k *tmpKeepalive) close() {
	close(k.stop)
	<-k.done
}

// archivePoint runs one point against its worker's shard under the
// standard panic guard. Whatever goes wrong — a gen/fn panic, a point
// error, an unsealed record — the record is rolled back before the
// error is returned, so the shard holds only complete records.
func archivePoint(ctx context.Context, aw *archive.Writer, i int, gen func(int) []float64, fn ArchivePointFunc) (err error) {
	var rec *archive.RecordWriter
	defer func() {
		if r := recover(); r != nil {
			if _, ok := failpoint.AsCrash(r); ok {
				// A simulated crash is process death, not a point
				// failure: no rollback, no recovery — let it unwind to
				// the worker's crash handler.
				panic(r)
			}
			err = fmt.Errorf("worker panicked: %v", r)
		}
		if err != nil && rec != nil {
			if rbErr := aw.Rollback(rec); rbErr != nil {
				err = errors.Join(err, rbErr)
			}
		}
	}()
	params := gen(i)
	rec, err = aw.Begin(uint64(i), params)
	if err != nil {
		return err
	}
	if err := fn(ctx, i, params, rec); err != nil {
		return err
	}
	if !rec.Sealed() {
		return errors.New("point function returned without Finish-ing its record")
	}
	return nil
}
