package sweep

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/archive"
)

// ArchiveStats summarizes one RunArchive call.
type ArchiveStats struct {
	// Archived counts the points newly written by this call.
	Archived int
	// Skipped counts the points already present from earlier runs and
	// skipped by resume.
	Skipped int
	// Shards counts the shard files this call sealed (empty shards are
	// aborted, not sealed).
	Shards int
}

// ArchivePointFunc evaluates one sweep point and writes its output
// through the open archive record: stream sample rows via rec (it is a
// core.Sink — hand it to Model.RunStream or tee it with the summary
// accumulators), then seal the record with rec.Finish. A record left
// unsealed by a nil return is an error; on a non-nil return the record
// is rolled back so the shard keeps no partial data.
type ArchivePointFunc func(ctx context.Context, i int, params []float64, rec *archive.RecordWriter) error

// RunArchive evaluates a generated sweep in archive mode: point i's
// parameter vector comes from gen(i) and its full output — sample rows
// included — is persisted into dir instead of being reduced. It is the
// disk-backed counterpart of RunReduce for sweeps whose per-point
// trajectories must survive for post-hoc analysis.
//
// Each worker owns one shard file, so record writes are lock-free; a
// shard becomes visible under its final name only through an atomic
// rename when it is sealed, so an interrupted run leaves complete
// shards plus ignorable *.tmp litter (removed on the next call).
// RunArchive is resumable: it scans the completed shards already in dir
// and skips their point indices, so re-running after a crash or cancel
// archives exactly the missing points. Record payloads depend only on
// (i, params, fn), not on worker count or shard layout, so a resumed
// archive is bitwise-identical record-for-record to an uninterrupted
// one.
//
// Cancellation and errors follow RunReduce: the first genuine point
// error cancels the sweep and is reported deterministically (echoes of
// the cancellation never win), an externally canceled run returns
// ctx.Err(). Either way every worker rolls back its in-progress record
// and seals (or, when empty, removes) its shard — no truncated files
// are left behind.
func RunArchive(ctx context.Context, dir string, n, workers int, gen func(i int) []float64, fn ArchivePointFunc) (ArchiveStats, error) {
	var stats ArchiveStats
	if fn == nil {
		return stats, errors.New("sweep: nil point function")
	}
	if gen == nil {
		return stats, errors.New("sweep: nil point generator")
	}
	if dir == "" {
		return stats, errors.New("sweep: empty archive directory")
	}
	if n <= 0 {
		return stats, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return stats, fmt.Errorf("sweep: %w", err)
	}
	// Crash litter: in-progress shards of a previous run that never
	// reached their atomic rename. Their points were never marked done,
	// so removing them loses nothing.
	tmps, err := filepath.Glob(archive.TmpPattern(dir))
	if err != nil {
		return stats, fmt.Errorf("sweep: %w", err)
	}
	for _, tmp := range tmps {
		if err := os.Remove(tmp); err != nil {
			return stats, fmt.Errorf("sweep: removing stale %s: %w", tmp, err)
		}
	}
	// Resume: collect the indices already archived by completed shards.
	done := make(map[int]bool)
	prev, err := archive.OpenDir(dir)
	if err != nil {
		return stats, fmt.Errorf("sweep: scanning archive for resume: %w", err)
	}
	for _, idx := range prev.Indices() {
		if idx < uint64(n) {
			done[int(idx)] = true
		}
	}
	prev.Close()
	stats.Skipped = len(done)
	remaining := n - stats.Skipped
	if remaining == 0 {
		return stats, nil
	}
	base, err := archive.NextShard(dir)
	if err != nil {
		return stats, fmt.Errorf("sweep: %w", err)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > remaining {
		workers = remaining
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	idx := make(chan int)
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	var archived, sealedShards atomic.Int64
	fail := func(format string, args ...any) {
		errOnce.Do(func() {
			firstErr = fmt.Errorf(format, args...)
			cancel()
		})
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			aw, err := archive.Create(dir, shard)
			if err != nil {
				fail("sweep: creating shard %d: %w", shard, err)
				return
			}
			defer func() {
				// Seal the shard even when the sweep failed: its records
				// are complete points, and preserving them is what makes
				// the next run resume instead of redoing the work. An
				// empty shard is removed instead.
				if aw.Len() == 0 {
					_ = aw.Abort()
					return
				}
				if err := aw.Close(); err != nil {
					fail("sweep: sealing shard %d: %w", shard, err)
					return
				}
				sealedShards.Add(1)
			}()
			for i := range idx {
				if ctx.Err() != nil {
					continue
				}
				if err := archivePoint(ctx, aw, i, gen, fn); err != nil {
					if !isCancelEcho(ctx, err) {
						fail("sweep: point %d: %w", i, err)
					}
					continue
				}
				archived.Add(1)
			}
		}(base + w)
	}
feed:
	for i := 0; i < n; i++ {
		if done[i] {
			continue
		}
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	stats.Archived = int(archived.Load())
	stats.Shards = int(sealedShards.Load())
	if firstErr != nil {
		return stats, firstErr
	}
	return stats, parent.Err()
}

// archivePoint runs one point against its worker's shard under the
// standard panic guard. Whatever goes wrong — a gen/fn panic, a point
// error, an unsealed record — the record is rolled back before the
// error is returned, so the shard holds only complete records.
func archivePoint(ctx context.Context, aw *archive.Writer, i int, gen func(int) []float64, fn ArchivePointFunc) (err error) {
	var rec *archive.RecordWriter
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("worker panicked: %v", r)
		}
		if err != nil && rec != nil {
			if rbErr := aw.Rollback(rec); rbErr != nil {
				err = errors.Join(err, rbErr)
			}
		}
	}()
	params := gen(i)
	rec, err = aw.Begin(uint64(i), params)
	if err != nil {
		return err
	}
	if err := fn(ctx, i, params, rec); err != nil {
		return err
	}
	if !rec.Sealed() {
		return errors.New("point function returned without Finish-ing its record")
	}
	return nil
}
