package sweep

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/archive"
	"repro/internal/failpoint"
)

// DefaultStaleTmpTTL is how old an in-progress *.tmp shard must be
// before archive runs treat it as crash litter and remove it. Temps
// younger than this are presumed to belong to a live writer sharing
// the directory (a distributed-sweep worker in another process) and
// are never touched; lease-coordinated runs pass their lease TTL
// instead, which bounds how long a dead worker's litter lingers.
const DefaultStaleTmpTTL = 10 * time.Minute

// ArchiveStats summarizes one RunArchive call.
type ArchiveStats struct {
	// Archived counts the points newly written by this call.
	Archived int
	// Skipped counts the points already present from earlier runs and
	// skipped by resume.
	Skipped int
	// Shards counts the shard files this call sealed (empty shards are
	// aborted, not sealed).
	Shards int
}

// ArchivePointFunc evaluates one sweep point and writes its output
// through the open archive record: stream sample rows via rec (it is a
// core.Sink — hand it to Model.RunStream or tee it with the summary
// accumulators), then seal the record with rec.Finish. A record left
// unsealed by a nil return is an error; on a non-nil return the record
// is rolled back so the shard keeps no partial data.
type ArchivePointFunc func(ctx context.Context, i int, params []float64, rec *archive.RecordWriter) error

// RunArchive evaluates a generated sweep in archive mode: point i's
// parameter vector comes from gen(i) and its full output — sample rows
// included — is persisted into dir instead of being reduced. It is the
// disk-backed counterpart of RunReduce for sweeps whose per-point
// trajectories must survive for post-hoc analysis.
//
// Each worker owns one shard file, so record writes are lock-free; a
// shard becomes visible under its final name only through an atomic
// rename when it is sealed, so an interrupted run leaves complete
// shards plus ignorable *.tmp litter (removed by a later call once it
// is older than DefaultStaleTmpTTL — young temps may belong to a live
// run sharing the directory and are never touched).
// RunArchive is resumable: it scans the completed shards already in dir
// and skips their point indices, so re-running after a crash or cancel
// archives exactly the missing points. Record payloads depend only on
// (i, params, fn), not on worker count or shard layout, so a resumed
// archive is bitwise-identical record-for-record to an uninterrupted
// one.
//
// Cancellation and errors follow RunReduce: the first genuine point
// error cancels the sweep and is reported deterministically (echoes of
// the cancellation never win), an externally canceled run returns
// ctx.Err(). Either way every worker rolls back its in-progress record
// and seals (or, when empty, removes) its shard — no truncated files
// are left behind.
func RunArchive(ctx context.Context, dir string, n, workers int, gen func(i int) []float64, fn ArchivePointFunc) (ArchiveStats, error) {
	return ArchiveRun{Dir: dir, Hi: n, Workers: workers}.Run(ctx, gen, fn)
}

// ArchiveRun configures one archive-mode sweep over the point-index
// range [Lo, Hi). The zero value plus Dir and Hi reproduces RunArchive;
// the extra knobs exist for lease-coordinated distributed runs
// (internal/dsweep), where several processes share one directory and a
// worker must be able to restrict itself to its leased range, leave
// other writers' files alone, and fence its commits against a lost
// lease.
type ArchiveRun struct {
	// Dir is the shared archive directory.
	Dir string
	// Lo and Hi bound the half-open point-index range to archive.
	Lo, Hi int
	// Workers is the worker-goroutine count (0 = GOMAXPROCS).
	Workers int
	// StaleTmpAfter gates crash-litter cleanup: *.tmp shards younger
	// than this are presumed to belong to a live writer sharing the
	// directory and are left alone. 0 means DefaultStaleTmpTTL; a
	// negative value disables cleanup entirely.
	StaleTmpAfter time.Duration
	// DiscardOnCancel aborts (instead of seals) every worker's shard
	// when the run ends canceled. Lease-coordinated runs need this: a
	// worker whose lease was lost must not publish records another
	// worker may be re-archiving, or the directory would hold the same
	// point twice.
	DiscardOnCancel bool
	// BeforeSeal, when non-nil, runs immediately before each non-empty
	// shard is sealed; a non-nil error aborts the shard instead of
	// committing it. Distributed workers use it as a fencing check
	// ("do I still hold the lease?") at the last possible moment.
	BeforeSeal func() error
}

// Run executes the configured archive sweep. Semantics match
// RunArchive, restricted to [Lo, Hi): TTL-gated tmp cleanup, resume by
// index scan, per-worker shards claimed collision-tolerantly
// (archive.CreateAny), deterministic error reporting, and — under
// fault injection — a simulated crash abandons the worker's shard
// exactly as a killed process would: no rollback, no seal, litter left
// in place.
func (r ArchiveRun) Run(ctx context.Context, gen func(i int) []float64, fn ArchivePointFunc) (ArchiveStats, error) {
	var stats ArchiveStats
	if fn == nil {
		return stats, errors.New("sweep: nil point function")
	}
	if gen == nil {
		return stats, errors.New("sweep: nil point generator")
	}
	if r.Dir == "" {
		return stats, errors.New("sweep: empty archive directory")
	}
	if r.Lo < 0 || r.Hi < r.Lo {
		return stats, fmt.Errorf("sweep: bad point range [%d, %d)", r.Lo, r.Hi)
	}
	if r.Hi == r.Lo {
		return stats, nil
	}
	dir := r.Dir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return stats, fmt.Errorf("sweep: %w", err)
	}
	if err := r.cleanStaleTmps(); err != nil {
		return stats, err
	}
	// Resume: collect the in-range indices already archived by
	// completed shards.
	done := make(map[int]bool)
	prev, err := archive.OpenDir(dir)
	if err != nil {
		return stats, fmt.Errorf("sweep: scanning archive for resume: %w", err)
	}
	for _, idx := range prev.Indices() {
		if idx >= uint64(r.Lo) && idx < uint64(r.Hi) {
			done[int(idx)] = true
		}
	}
	prev.Close()
	stats.Skipped = len(done)
	remaining := r.Hi - r.Lo - stats.Skipped
	if remaining == 0 {
		return stats, nil
	}
	base, err := archive.NextShard(dir)
	if err != nil {
		return stats, fmt.Errorf("sweep: %w", err)
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > remaining {
		workers = remaining
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	idx := make(chan int)
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	var archived, sealedShards atomic.Int64
	fail := func(format string, args ...any) {
		errOnce.Do(func() {
			firstErr = fmt.Errorf(format, args...)
			cancel()
		})
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(claim int) {
			defer wg.Done()
			var aw *archive.Writer
			defer func() {
				if rec := recover(); rec != nil {
					c, ok := failpoint.AsCrash(rec)
					if !ok {
						panic(rec)
					}
					// Simulated process death: abandon everything as
					// the crash left it — no rollback, no seal, no
					// tmp cleanup. Resume redoes the lost points.
					fail("sweep: worker crashed: %w", c)
					return
				}
				if aw == nil {
					return
				}
				if aw.Len() == 0 {
					_ = aw.Abort()
					return
				}
				if r.DiscardOnCancel && ctx.Err() != nil {
					// The run was canceled (lease lost, sibling crash,
					// caller abort): publishing this shard could race a
					// re-leasing worker into duplicate indices, so the
					// records are discarded and redone later.
					_ = aw.Abort()
					return
				}
				if r.BeforeSeal != nil {
					if err := r.BeforeSeal(); err != nil {
						_ = aw.Abort()
						fail("sweep: pre-seal check: %w", err)
						return
					}
				}
				// Seal the shard even when the sweep failed: its records
				// are complete points, and preserving them is what makes
				// the next run resume instead of redoing the work.
				if err := aw.Close(); err != nil {
					fail("sweep: sealing shard: %w", err)
					return
				}
				sealedShards.Add(1)
			}()
			var err error
			aw, err = archive.CreateAny(dir, claim)
			if err != nil {
				fail("sweep: creating shard: %w", err)
				return
			}
			for i := range idx {
				if ctx.Err() != nil {
					continue
				}
				if err := archivePoint(ctx, aw, i, gen, fn); err != nil {
					if !isCancelEcho(ctx, err) {
						fail("sweep: point %d: %w", i, err)
					}
					continue
				}
				archived.Add(1)
			}
		}(base + w)
	}
feed:
	for i := r.Lo; i < r.Hi; i++ {
		if done[i] {
			continue
		}
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	stats.Archived = int(archived.Load())
	stats.Shards = int(sealedShards.Load())
	if firstErr != nil {
		return stats, firstErr
	}
	return stats, parent.Err()
}

// cleanStaleTmps removes crash litter: in-progress shards of a dead
// run that never reached their atomic rename. Their points were never
// marked done, so removing them loses nothing — but when two processes
// share a directory, a young *.tmp is most likely a live worker's
// open shard, so only temps older than the TTL are touched.
func (r ArchiveRun) cleanStaleTmps() error {
	ttl := r.StaleTmpAfter
	if ttl < 0 {
		return nil
	}
	if ttl == 0 {
		ttl = DefaultStaleTmpTTL
	}
	tmps, err := filepath.Glob(archive.TmpPattern(r.Dir))
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	now := time.Now()
	for _, tmp := range tmps {
		fi, err := os.Stat(tmp)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue // another sharer cleaned it first
			}
			return fmt.Errorf("sweep: %w", err)
		}
		if now.Sub(fi.ModTime()) < ttl {
			continue // presumed live writer
		}
		if err := os.Remove(tmp); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("sweep: removing stale %s: %w", tmp, err)
		}
	}
	return nil
}

// archivePoint runs one point against its worker's shard under the
// standard panic guard. Whatever goes wrong — a gen/fn panic, a point
// error, an unsealed record — the record is rolled back before the
// error is returned, so the shard holds only complete records.
func archivePoint(ctx context.Context, aw *archive.Writer, i int, gen func(int) []float64, fn ArchivePointFunc) (err error) {
	var rec *archive.RecordWriter
	defer func() {
		if r := recover(); r != nil {
			if _, ok := failpoint.AsCrash(r); ok {
				// A simulated crash is process death, not a point
				// failure: no rollback, no recovery — let it unwind to
				// the worker's crash handler.
				panic(r)
			}
			err = fmt.Errorf("worker panicked: %v", r)
		}
		if err != nil && rec != nil {
			if rbErr := aw.Rollback(rec); rbErr != nil {
				err = errors.Join(err, rbErr)
			}
		}
	}()
	params := gen(i)
	rec, err = aw.Begin(uint64(i), params)
	if err != nil {
		return err
	}
	if err := fn(ctx, i, params, rec); err != nil {
		return err
	}
	if !rec.Sealed() {
		return errors.New("point function returned without Finish-ing its record")
	}
	return nil
}
