package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// capture returns a Sleep seam recording every delay without waiting.
func capture(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return ctx.Err()
	}
}

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	var delays []time.Duration
	p := Policy{MaxAttempts: 5, Jitter: -1, Sleep: capture(&delays)}
	calls := 0
	err := p.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want nil after 3", err, calls)
	}
	// Jitter disabled: the schedule is the pure exponential 10ms, 20ms.
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(delays) != len(want) || delays[0] != want[0] || delays[1] != want[1] {
		t.Fatalf("delays = %v, want %v", delays, want)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	var delays []time.Duration
	p := Policy{MaxAttempts: 3, Sleep: capture(&delays)}
	boom := errors.New("boom")
	calls := 0
	err := p.Do(context.Background(), func() error { calls++; return boom })
	if !errors.Is(err, boom) || calls != 3 || len(delays) != 2 {
		t.Fatalf("err=%v calls=%d delays=%d, want boom after 3 calls, 2 sleeps", err, calls, len(delays))
	}
}

func TestPermanentStopsImmediately(t *testing.T) {
	p := Policy{MaxAttempts: 10, Sleep: capture(new([]time.Duration))}
	boom := errors.New("boom")
	calls := 0
	err := p.Do(context.Background(), func() error { calls++; return Permanent(boom) })
	if err != boom {
		t.Fatalf("err = %v, want the unwrapped boom", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) should stay nil")
	}
	// The wrapper keeps the chain inspectable before Do unwraps it.
	if !errors.Is(Permanent(boom), boom) {
		t.Fatal("Permanent broke errors.Is")
	}
}

func TestCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Policy{MaxAttempts: 5, Sleep: capture(new([]time.Duration))}
	if err := p.Do(ctx, func() error { t.Fatal("op ran"); return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// Cancellation mid-backoff reports the op's error, not the bare
	// context error, so the caller sees what was actually failing.
	boom := errors.New("boom")
	ctx2, cancel2 := context.WithCancel(context.Background())
	p2 := Policy{MaxAttempts: 5, Sleep: func(ctx context.Context, d time.Duration) error {
		cancel2()
		return ctx.Err()
	}}
	calls := 0
	if err := p2.Do(ctx2, func() error { calls++; return boom }); !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want boom after 1 call", err, calls)
	}
}

func TestJitterIsDeterministicAndBounded(t *testing.T) {
	run := func(seed uint64) []time.Duration {
		var delays []time.Duration
		p := Policy{MaxAttempts: 6, Jitter: 0.5, Seed: seed, Sleep: capture(&delays)}
		_ = p.Do(context.Background(), func() error { return errors.New("x") })
		return delays
	}
	a, b := run(7), run(7)
	if len(a) != 5 {
		t.Fatalf("got %d delays, want 5", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at delay %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Every jittered delay stays within ±Jitter/2 of its nominal value
	// (nominal schedule: 10, 20, 40, 80, 160 ms).
	nominal := 10 * time.Millisecond
	for i, d := range a {
		lo := time.Duration(float64(nominal) * 0.75)
		hi := time.Duration(float64(nominal) * 1.25)
		if d < lo || d > hi {
			t.Fatalf("delay %d = %v outside [%v, %v]", i, d, lo, hi)
		}
		nominal *= 2
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
}
