// Package retry implements context-aware retries with jittered
// exponential backoff. Distributed sweep workers use it for the
// transient failures of a shared filesystem — lease renewals racing a
// slow NFS server, shard creation colliding with another worker's, an
// injected transient write error — where trying again a moment later
// is the correct response and giving up after a bounded number of
// attempts keeps genuine faults loud.
//
// Jitter is drawn from a policy-seeded deterministic generator, so a
// test (or a reproduction of one) sees the same backoff sequence on
// every run; concurrent workers decorrelate by seeding with their
// worker id.
package retry

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Policy describes one backoff schedule. The zero value is usable:
// 4 attempts, 10 ms base delay doubling to a 1 s cap, with 50% jitter.
type Policy struct {
	// MaxAttempts is the total number of op invocations (not retries);
	// <= 0 means 4.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; <= 0 means 10 ms.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff; <= 0 means 1 s.
	MaxDelay time.Duration
	// Multiplier grows the backoff between retries; <= 1 means 2.
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized: a delay
	// d becomes uniform in [d·(1−Jitter/2), d·(1+Jitter/2)]. 0 means
	// the default 0.5; negative disables jitter.
	Jitter float64
	// Seed selects the deterministic jitter stream; 0 means 1.
	Seed uint64
	// Sleep, when non-nil, replaces the context-aware timer — a test
	// seam for asserting the backoff schedule without real waiting.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (p Policy) norm() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	switch {
	case p.Jitter == 0:
		p.Jitter = 0.5
	case p.Jitter < 0:
		p.Jitter = 0
	case p.Jitter > 1:
		p.Jitter = 1
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Sleep == nil {
		p.Sleep = sleep
	}
	return p
}

// Do runs op until it returns nil, returns an error wrapped by
// Permanent, MaxAttempts invocations have failed, or ctx ends. The
// returned error is the last op error (unwrapped from Permanent); a
// context that ends before the first attempt returns ctx.Err().
func (p Policy) Do(ctx context.Context, op func() error) error {
	p = p.norm()
	rng := p.Seed
	delay := p.BaseDelay
	var err error
	for attempt := 1; ; attempt++ {
		if ctx.Err() != nil {
			if err != nil {
				return err
			}
			return ctx.Err()
		}
		err = op()
		if err == nil {
			return nil
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return pe.err
		}
		if attempt >= p.MaxAttempts {
			return err
		}
		d := delay
		if p.Jitter > 0 {
			// splitmix64: cheap, seedable, and good enough to
			// decorrelate workers.
			rng += 0x9e3779b97f4a7c15
			z := rng
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			z ^= z >> 31
			u := float64(z>>11) / (1 << 53) // uniform in [0, 1)
			d = time.Duration(float64(d) * (1 - p.Jitter/2 + p.Jitter*u))
		}
		if p.Sleep(ctx, d) != nil {
			return err
		}
		delay = time.Duration(float64(delay) * p.Multiplier)
		if delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
}

// sleep waits d or until ctx ends, whichever comes first.
//
//pomvet:allow wallclock backoff between retries of real I/O is inherently wall-clock; no simulation state depends on it
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Permanent marks err as not retryable: Do stops immediately and
// returns the original err. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

type permanentError struct{ err error }

func (e *permanentError) Error() string { return fmt.Sprintf("permanent: %v", e.err) }
func (e *permanentError) Unwrap() error { return e.err }
