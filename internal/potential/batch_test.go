package potential

import (
	"math"
	"testing"
)

// TestBatchMatchesScalar asserts every built-in Batch implementation
// reproduces Eval bit-for-bit, both into a separate destination and fully
// in place (dst aliasing dtheta).
func TestBatchMatchesScalar(t *testing.T) {
	sigma := 0.513372617044002 // awkward horizon exercising the boundary
	pots := []Potential{
		KuramotoSine{},
		Tanh{},
		Linear{},
		NewDesync(sigma),
		NewDesync(1.5),
		Clipped{Inner: KuramotoSine{}, Limit: 0.5},
		Clipped{Inner: Func{F: math.Atan, ID: "atan"}, Limit: 1},
		Func{F: math.Cbrt, ID: "cbrt"},
	}
	var xs []float64
	for x := -8.0; x <= 8.0; x += 0.0173 {
		xs = append(xs, x)
	}
	xs = append(xs,
		0, math.Copysign(0, -1),
		sigma, -sigma, math.Nextafter(sigma, 0), -math.Nextafter(sigma, 0),
		math.NaN(), 1e9, -1e9,
	)
	for _, p := range pots {
		b := BatchOf(p)
		want := make([]float64, len(xs))
		for i, x := range xs {
			want[i] = p.Eval(x)
		}
		got := make([]float64, len(xs))
		b.EvalInto(got, xs)
		for i := range xs {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("%s: EvalInto(%g) = %v, Eval = %v", p.Name(), xs[i], got[i], want[i])
			}
		}
		// In-place (aliased) evaluation must agree too.
		inPlace := append([]float64(nil), xs...)
		b.EvalInto(inPlace, inPlace)
		for i := range xs {
			if math.Float64bits(inPlace[i]) != math.Float64bits(want[i]) {
				t.Fatalf("%s: aliased EvalInto(%g) = %v, Eval = %v", p.Name(), xs[i], inPlace[i], want[i])
			}
		}
	}
}

// TestBatchOfPassthrough asserts BatchOf returns native implementations
// unwrapped and adapts plain potentials.
func TestBatchOfPassthrough(t *testing.T) {
	if _, ok := BatchOf(KuramotoSine{}).(KuramotoSine); !ok {
		t.Fatal("BatchOf(KuramotoSine) should be the native implementation")
	}
	f := Func{F: math.Atan, ID: "atan"}
	if _, ok := BatchOf(f).(genericBatch); !ok {
		t.Fatal("BatchOf(Func) should wrap with the generic adapter")
	}
}
