// Package potential implements the interaction potentials of the physical
// oscillator model (POM). The potential V(Δθ) couples each oscillator to
// its communication partners; its shape selects between the synchronizing
// behaviour of resource-scalable parallel programs and the desynchronizing
// behaviour of resource-bottlenecked (memory- or communication-bound)
// programs (paper §5.2, Fig. 1a).
//
// Sign convention: V acts on Δθ = θ_j − θ_i from the perspective of
// oscillator i. A positive V for positive Δθ pulls i forward toward the
// leading j (attraction).
package potential

import (
	"fmt"
	"math"

	"repro/internal/mathx"
)

// Potential is an interaction potential V(Δθ) evaluated on the phase
// difference Δθ = θ_j − θ_i.
type Potential interface {
	// Eval returns V(Δθ).
	Eval(dtheta float64) float64
	// Name returns a short identifier for tables and plots.
	Name() string
}

// Batch is implemented by potentials that can evaluate many phase
// differences in one call. The oscillator model's right-hand side gathers
// all phase differences of a row block into one buffer and issues a single
// EvalInto per block, so the per-pair cost is a straight-line float loop
// with no interface dispatch.
type Batch interface {
	Potential
	// EvalInto writes V(dtheta[i]) into dst[i] for every i. dst and dtheta
	// must have equal length and may alias (in-place evaluation is legal).
	EvalInto(dst, dtheta []float64)
}

// genericBatch adapts any Potential to Batch with an elementwise loop —
// the fallback for custom potentials that only implement Eval.
type genericBatch struct{ Potential }

func (g genericBatch) EvalInto(dst, dtheta []float64) {
	for i, d := range dtheta {
		dst[i] = g.Potential.Eval(d)
	}
}

// BatchOf returns p itself when it already implements Batch, and an
// elementwise adapter otherwise, so callers can always evaluate through
// the slice API.
func BatchOf(p Potential) Batch {
	if b, ok := p.(Batch); ok {
		return b
	}
	return genericBatch{p}
}

// Analyzable potentials expose the structural features the paper discusses:
// the stable fixed point of the pairwise dynamics and the odd symmetry.
type Analyzable interface {
	Potential
	// StableZero returns the phase difference at which a pair of coupled
	// oscillators settles: 0 for synchronizing potentials, the first
	// positive zero (2σ/3 for Desync) for desynchronizing ones.
	StableZero() float64
}

// Tanh is the synchronizing potential of Eq. (3):
//
//	V(Δθ) = tanh(Δθ)
//
// It is attractive for every phase difference — unlike the Kuramoto sine it
// has no other zeros and admits no phase slips — so any disturbance decays
// and the system snaps back into lockstep, mimicking resource-scalable
// bulk-synchronous programs.
type Tanh struct{}

// Eval implements Potential.
func (Tanh) Eval(d float64) float64 { return math.Tanh(d) }

// EvalInto implements Batch.
func (Tanh) EvalInto(dst, dtheta []float64) {
	mathx.TanhInto(dst, dtheta)
}

// Name implements Potential.
func (Tanh) Name() string { return "tanh" }

// StableZero implements Analyzable: the only equilibrium is lockstep.
func (Tanh) StableZero() float64 { return 0 }

// Desync is the desynchronizing potential of Eq. (4):
//
//	V(Δθ) = -sin(3π/(2σ)·Δθ)   for |Δθ| < σ
//	V(Δθ) = sgn(Δθ)            otherwise
//
// evaluated on Δθ = θ_j − θ_i, matching the blue curve of Fig. 1(a): the
// potential descends through zero at the origin (short-range repulsion —
// lockstep is unstable and any disturbance grows), rises through its first
// stable zero at 2σ/3, and saturates at ±1 beyond the horizon (long-range
// attraction). Neighboring phases therefore settle with gaps of 2σ/3: the
// broken-symmetry "computational wavefront" state of memory-bound
// programs. σ is the interaction horizon; small σ means stiff, nearly
// synchronized systems, large σ strong desynchronization. (The paper
// writes Eq. (4) with argument θ_i − θ_j; Fig. 1(a) fixes the convention
// used here.)
type Desync struct {
	// Sigma is the interaction horizon σ > 0.
	Sigma float64
}

// NewDesync returns the bottlenecked-program potential with horizon sigma.
// It panics if sigma <= 0 (a configuration error).
func NewDesync(sigma float64) Desync {
	if sigma <= 0 {
		panic("potential: Desync needs sigma > 0")
	}
	return Desync{Sigma: sigma}
}

// Eval implements Potential.
func (p Desync) Eval(d float64) float64 {
	if math.Abs(d) < p.Sigma {
		return -math.Sin(3 * math.Pi / (2 * p.Sigma) * d)
	}
	if d > 0 {
		return 1
	}
	return -1
}

// EvalInto implements Batch: classify every element up front (dst may
// alias dtheta, so the original values are consumed in this first pass),
// writing the sine argument w·Δθ inside the horizon and ∓π/2 — whose
// sine is exactly ∓1 — for the saturated branches. One batched sine pass
// and a negation then reproduce Eval bit-for-bit.
func (p Desync) EvalInto(dst, dtheta []float64) {
	w := 3 * math.Pi / (2 * p.Sigma)
	for i, d := range dtheta {
		switch {
		case math.Abs(d) < p.Sigma:
			dst[i] = w * d
		case d > 0:
			dst[i] = -math.Pi / 2 // -sin(-π/2) = +1
		default:
			dst[i] = math.Pi / 2 // -sin(π/2) = -1
		}
	}
	mathx.SinInto(dst, dst)
	for i, v := range dst {
		dst[i] = -v
	}
}

// Name implements Potential.
func (p Desync) Name() string { return fmt.Sprintf("desync(σ=%g)", p.Sigma) }

// StableZero implements Analyzable: the first zero with negative slope of
// the pairwise force, at 2σ/3 (paper §5.2.2).
func (p Desync) StableZero() float64 { return 2 * p.Sigma / 3 }

// KuramotoSine is the classic Kuramoto interaction sin(Δθ) of Eq. (1). It
// is periodic — it admits phase slips (differences of multiples of 2π are
// dynamically equivalent) and has unstable zeros at odd multiples of π —
// which is exactly why the paper rejects it for parallel programs. It is
// retained as the baseline comparator.
type KuramotoSine struct{}

// Eval implements Potential.
func (KuramotoSine) Eval(d float64) float64 { return math.Sin(d) }

// EvalInto implements Batch via the batched sine kernel: identical
// results to per-pair math.Sin calls, evaluated as one straight-line
// loop over the packed buffer.
func (KuramotoSine) EvalInto(dst, dtheta []float64) {
	mathx.SinInto(dst, dtheta)
}

// Name implements Potential.
func (KuramotoSine) Name() string { return "kuramoto-sine" }

// StableZero implements Analyzable.
func (KuramotoSine) StableZero() float64 { return 0 }

// Linear is the unsaturated potential V(Δθ) = Δθ; a harmonic spring
// coupling useful for analytic sanity checks (the resulting system is
// linear and solvable in closed form).
type Linear struct{}

// Eval implements Potential.
func (Linear) Eval(d float64) float64 { return d }

// EvalInto implements Batch.
func (Linear) EvalInto(dst, dtheta []float64) { copy(dst, dtheta) }

// Name implements Potential.
func (Linear) Name() string { return "linear" }

// StableZero implements Analyzable.
func (Linear) StableZero() float64 { return 0 }

// Clipped saturates another potential at ±Limit, modeling the bounded
// "pull" a blocked MPI process can exert per cycle.
type Clipped struct {
	Inner Potential
	Limit float64
}

// Eval implements Potential.
func (c Clipped) Eval(d float64) float64 {
	v := c.Inner.Eval(d)
	if v > c.Limit {
		return c.Limit
	}
	if v < -c.Limit {
		return -c.Limit
	}
	return v
}

// EvalInto implements Batch. The inner potential's batch path is used
// when available, followed by an in-place clamp pass.
func (c Clipped) EvalInto(dst, dtheta []float64) {
	if b, ok := c.Inner.(Batch); ok {
		b.EvalInto(dst, dtheta)
		for i, v := range dst {
			if v > c.Limit {
				dst[i] = c.Limit
			} else if v < -c.Limit {
				dst[i] = -c.Limit
			}
		}
		return
	}
	for i, d := range dtheta {
		dst[i] = c.Eval(d)
	}
}

// Name implements Potential.
func (c Clipped) Name() string { return fmt.Sprintf("clipped(%s,±%g)", c.Inner.Name(), c.Limit) }

// Func adapts a plain function to the Potential interface.
type Func struct {
	F  func(float64) float64
	ID string
}

// Eval implements Potential.
func (f Func) Eval(d float64) float64 { return f.F(d) }

// Name implements Potential.
func (f Func) Name() string { return f.ID }

// Sample evaluates p on n evenly spaced points of [lo, hi] and returns the
// abscissae and values; used to regenerate Fig. 1(a).
func Sample(p Potential, lo, hi float64, n int) (xs, ys []float64) {
	xs = make([]float64, n)
	ys = make([]float64, n)
	if n == 1 {
		xs[0] = lo
		ys[0] = p.Eval(lo)
		return xs, ys
	}
	step := (hi - lo) / float64(n-1)
	for i := range xs {
		x := lo + float64(i)*step
		xs[i] = x
		ys[i] = p.Eval(x)
	}
	return xs, ys
}

// FindZeros locates sign changes of p on [lo, hi] by scanning n grid cells
// and refining each bracketed root with bisection to tolerance tol.
func FindZeros(p Potential, lo, hi float64, n int, tol float64) []float64 {
	var zeros []float64
	prevX := lo
	prevV := p.Eval(lo)
	step := (hi - lo) / float64(n)
	for i := 1; i <= n; i++ {
		x := lo + float64(i)*step
		v := p.Eval(x)
		switch {
		case v == 0:
			zeros = append(zeros, x)
		case prevV*v < 0:
			a, b := prevX, x
			fa := prevV
			for b-a > tol {
				m := (a + b) / 2
				fm := p.Eval(m)
				if fa*fm <= 0 {
					b = m
				} else {
					a, fa = m, fm
				}
			}
			zeros = append(zeros, (a+b)/2)
		}
		prevX, prevV = x, v
	}
	return zeros
}
