package potential

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTanhProperties(t *testing.T) {
	p := Tanh{}
	if p.Eval(0) != 0 {
		t.Error("V(0) must be 0")
	}
	// Always attractive: sign(V) == sign(Δθ), saturating at ±1.
	for _, d := range []float64{0.1, 1, 5, 100} {
		if v := p.Eval(d); v <= 0 || v > 1 {
			t.Errorf("V(%v) = %v, want in (0, 1]", d, v)
		}
		if v := p.Eval(-d); v >= 0 || v < -1 {
			t.Errorf("V(%v) = %v, want in [-1, 0)", -d, v)
		}
	}
	if p.StableZero() != 0 {
		t.Error("tanh stable zero must be lockstep")
	}
}

func TestTanhOddSymmetry(t *testing.T) {
	f := func(d float64) bool {
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return true
		}
		p := Tanh{}
		return math.Abs(p.Eval(d)+p.Eval(-d)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDesyncShape(t *testing.T) {
	sigma := 5.0
	p := NewDesync(sigma)
	if p.Eval(0) != 0 {
		t.Error("V(0) must be 0")
	}
	// Short range: repulsive. A slightly leading neighbor (small Δθ > 0)
	// yields V < 0, pushing i backwards and *growing* the gap — lockstep
	// is unstable. For a mutually coupled pair with odd V the gap obeys
	// dΔθ/dt ∝ V(−Δθ) − V(Δθ) = −2V(Δθ), so a fixed point is stable
	// where V' > 0: the first such zero is Δθ = 2σ/3.
	if v := p.Eval(0.1); v >= 0 {
		t.Errorf("V(0.1) = %v, want < 0 (short-range repulsion)", v)
	}
	zero := p.StableZero()
	if math.Abs(zero-2*sigma/3) > 1e-12 {
		t.Errorf("StableZero = %v, want %v", zero, 2*sigma/3)
	}
	if v := p.Eval(zero); math.Abs(v) > 1e-12 {
		t.Errorf("V(2σ/3) = %v, want 0", v)
	}
	// Slope at the stable zero must be positive (see gap dynamics above).
	h := 1e-6
	slope := (p.Eval(zero+h) - p.Eval(zero-h)) / (2 * h)
	if slope <= 0 {
		t.Errorf("slope at stable zero = %v, want > 0", slope)
	}
	// Slope at the origin must be negative (lockstep unstable).
	slope0 := (p.Eval(h) - p.Eval(-h)) / (2 * h)
	if slope0 >= 0 {
		t.Errorf("slope at origin = %v, want < 0", slope0)
	}
	// Long range: constant attraction of magnitude 1.
	for _, d := range []float64{sigma, sigma + 1, 100} {
		if v := p.Eval(d); v != 1 {
			t.Errorf("V(%v) = %v, want 1", d, v)
		}
		if v := p.Eval(-d); v != -1 {
			t.Errorf("V(%v) = %v, want -1", -d, v)
		}
	}
}

func TestDesyncContinuityAtHorizon(t *testing.T) {
	// −sin(3π/2) = +1 at Δθ → σ⁻ matches the constant branch sgn(Δθ) = +1
	// at Δθ ≥ σ: the potential is continuous at the horizon, as the blue
	// curve of Fig. 1(a) shows.
	p := NewDesync(4)
	eps := 1e-9
	if v := p.Eval(4 - eps); math.Abs(v-1) > 1e-6 {
		t.Errorf("V(σ⁻) = %v, want 1", v)
	}
	if v := p.Eval(4 + eps); v != 1 {
		t.Errorf("V(σ⁺) = %v, want 1", v)
	}
	if v := p.Eval(-4 - eps); v != -1 {
		t.Errorf("V(−σ⁻) = %v, want -1", v)
	}
}

func TestDesyncOddSymmetry(t *testing.T) {
	p := NewDesync(3)
	f := func(d float64) bool {
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return true
		}
		return math.Abs(p.Eval(d)+p.Eval(-d)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDesyncZerosInsideHorizon(t *testing.T) {
	// Zeros of sin(3π/(2σ)x) on (0, σ): x = 2σ/3 only (x = 4σ/3 > σ).
	sigma := 6.0
	p := NewDesync(sigma)
	zeros := FindZeros(p, 0.01, sigma-0.01, 2000, 1e-10)
	if len(zeros) != 1 {
		t.Fatalf("zeros in (0, σ) = %v, want exactly one", zeros)
	}
	if math.Abs(zeros[0]-2*sigma/3) > 1e-6 {
		t.Errorf("zero at %v, want %v", zeros[0], 2*sigma/3)
	}
}

func TestNewDesyncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for sigma <= 0")
		}
	}()
	NewDesync(0)
}

func TestKuramotoSine(t *testing.T) {
	p := KuramotoSine{}
	// Periodicity — the phase-slip property the paper criticizes.
	f := func(d float64) bool {
		if math.Abs(d) > 1e6 || math.IsNaN(d) {
			return true
		}
		return math.Abs(p.Eval(d)-p.Eval(d+2*math.Pi)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Zeros at multiples of π (the paper's second objection).
	if math.Abs(p.Eval(math.Pi)) > 1e-12 {
		t.Error("sin must vanish at π")
	}
}

func TestLinearAndClipped(t *testing.T) {
	if (Linear{}).Eval(3.5) != 3.5 {
		t.Error("Linear must be identity")
	}
	c := Clipped{Inner: Linear{}, Limit: 2}
	if c.Eval(5) != 2 || c.Eval(-5) != -2 || c.Eval(1) != 1 {
		t.Error("Clipped saturation wrong")
	}
}

func TestFuncAdapter(t *testing.T) {
	p := Func{F: math.Cbrt, ID: "cbrt"}
	if p.Eval(8) != 2 || p.Name() != "cbrt" {
		t.Error("Func adapter broken")
	}
}

func TestSample(t *testing.T) {
	xs, ys := Sample(Linear{}, -1, 1, 5)
	if len(xs) != 5 || len(ys) != 5 {
		t.Fatal("wrong sample length")
	}
	if xs[0] != -1 || xs[4] != 1 || ys[2] != 0 {
		t.Errorf("Sample values: xs=%v ys=%v", xs, ys)
	}
	xs, ys = Sample(Linear{}, 2, 9, 1)
	if xs[0] != 2 || ys[0] != 2 {
		t.Error("single-point Sample wrong")
	}
}

func TestFindZerosLinear(t *testing.T) {
	zeros := FindZeros(Linear{}, -1, 1, 100, 1e-12)
	if len(zeros) != 1 || math.Abs(zeros[0]) > 1e-9 {
		t.Errorf("zeros = %v", zeros)
	}
}

func TestNames(t *testing.T) {
	for _, p := range []Potential{Tanh{}, NewDesync(2), KuramotoSine{}, Linear{},
		Clipped{Inner: Tanh{}, Limit: 1}} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}
