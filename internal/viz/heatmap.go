package viz

import (
	"fmt"
	"math"
	"strings"
)

// Heatmap renders a matrix as a colored cell grid — used for the
// phase-timeline view (time × rank → lag) that corresponds to the paper's
// trace insets.
type Heatmap struct {
	Title, XLabel, YLabel string
	// Data[row][col] is the cell value; rows render top to bottom.
	Data [][]float64
	// W and H are the canvas size; zero selects 720×480.
	W, H int
	// Lo and Hi clamp the color scale; when both zero the data range is
	// used.
	Lo, Hi float64
}

// SVG renders the heatmap with a white→red scale (white low, deep red
// high — matching the compute/communication coloring convention).
func (hm *Heatmap) SVG() string {
	w, h := hm.W, hm.H
	if w == 0 {
		w = 720
	}
	if h == 0 {
		h = 480
	}
	rows := len(hm.Data)
	cols := 0
	for _, r := range hm.Data {
		if len(r) > cols {
			cols = len(r)
		}
	}

	lo, hi := hm.Lo, hm.Hi
	if lo == 0 && hi == 0 {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, r := range hm.Data {
			for _, v := range r {
				if math.IsNaN(v) {
					continue
				}
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
		if lo > hi {
			lo, hi = 0, 1
		}
	}
	if hi == lo {
		hi = lo + 1
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&b, `<text x="%d" y="25" font-size="16" text-anchor="middle" font-weight="bold">%s</text>`,
		w/2, esc(hm.Title))
	if rows == 0 || cols == 0 {
		b.WriteString(`</svg>`)
		return b.String()
	}
	cw := float64(w-2*margin) / float64(cols)
	ch := float64(h-2*margin) / float64(rows)
	for ri, row := range hm.Data {
		for ci, v := range row {
			if math.IsNaN(v) {
				continue
			}
			u := (v - lo) / (hi - lo)
			if u < 0 {
				u = 0
			}
			if u > 1 {
				u = 1
			}
			// White (low) → red (high).
			g := int(255 * (1 - u))
			fmt.Fprintf(&b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="#ff%02x%02x"/>`,
				float64(margin)+float64(ci)*cw, float64(margin)+float64(ri)*ch,
				cw+0.5, ch+0.5, g, g)
		}
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="13" text-anchor="middle">%s</text>`,
		w/2, h-15, esc(hm.XLabel))
	fmt.Fprintf(&b, `<text x="15" y="%d" font-size="13" text-anchor="middle" transform="rotate(-90 15 %d)">%s</text>`,
		h/2, h/2, esc(hm.YLabel))
	b.WriteString(`</svg>`)
	return b.String()
}
