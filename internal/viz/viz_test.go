package viz

import (
	"math"
	"strings"
	"testing"
)

func TestLinePlotSVGWellFormed(t *testing.T) {
	p := &LinePlot{
		Title:  "Potential & <shapes>",
		XLabel: "x", YLabel: "V(x)",
		Series: []Series{
			{Name: "tanh", Xs: []float64{-1, 0, 1}, Ys: []float64{-0.76, 0, 0.76}},
			{Name: "desync", Xs: []float64{-1, 0, 1}, Ys: []float64{0.9, 0, -0.9}},
		},
	}
	svg := p.SVG()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatal("not an SVG document")
	}
	if strings.Count(svg, "<path") != 2 {
		t.Errorf("want 2 series paths, got %d", strings.Count(svg, "<path"))
	}
	if !strings.Contains(svg, "&lt;shapes&gt;") {
		t.Error("title not escaped")
	}
	if strings.Contains(svg, "NaN") {
		t.Error("NaN leaked into SVG")
	}
}

func TestLinePlotHandlesNaNGaps(t *testing.T) {
	p := &LinePlot{Series: []Series{{
		Name: "gappy",
		Xs:   []float64{0, 1, 2, 3},
		Ys:   []float64{1, math.NaN(), 2, 3},
	}}}
	svg := p.SVG()
	if strings.Contains(svg, "NaN") {
		t.Error("NaN leaked")
	}
	// The NaN break must start a new subpath: two M commands.
	path := svg[strings.Index(svg, `<path d="`)+9:]
	path = path[:strings.Index(path, `"`)]
	if strings.Count(path, "M") != 2 {
		t.Errorf("want 2 subpaths, path = %q", path)
	}
}

func TestLinePlotEmpty(t *testing.T) {
	p := &LinePlot{}
	if svg := p.SVG(); !strings.HasPrefix(svg, "<svg") {
		t.Error("empty plot must still render a document")
	}
}

func TestCircleDiagram(t *testing.T) {
	c := &CircleDiagram{
		Title:  "phases",
		Phases: []float64{0, math.Pi / 2, math.Pi},
		Freqs:  []float64{1, 2, 3},
	}
	svg := c.SVG()
	// One boundary circle + three dots.
	if got := strings.Count(svg, "<circle"); got != 4 {
		t.Errorf("circles = %d, want 4", got)
	}
	// Without frequencies dots still render.
	c2 := &CircleDiagram{Phases: []float64{0, 1}}
	if got := strings.Count(c2.SVG(), "<circle"); got != 3 {
		t.Errorf("circles = %d, want 3", got)
	}
}

func TestGantt(t *testing.T) {
	g := &Gantt{
		Title: "trace",
		Rows:  2,
		T0:    0, T1: 10,
		Spans: []GanttSpan{
			{Row: 0, Start: 0, End: 5},
			{Row: 0, Start: 5, End: 6, Comm: true},
			{Row: 1, Start: 0, End: 10},
			{Row: 5, Start: 0, End: 1},   // out of range: dropped
			{Row: 0, Start: 11, End: 12}, // out of window: dropped
		},
	}
	svg := g.SVG()
	// Background rect + 3 visible spans.
	if got := strings.Count(svg, "<rect"); got != 4 {
		t.Errorf("rects = %d, want 4", got)
	}
	if !strings.Contains(svg, "#cc2222") {
		t.Error("comm span color missing")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Errorf("length = %d", len([]rune(s)))
	}
	if Sparkline(nil) != "" {
		t.Error("empty input must give empty string")
	}
	flat := Sparkline([]float64{5, 5, 5})
	if len([]rune(flat)) != 3 {
		t.Error("flat input must still render")
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"k", "speed"}, [][]string{{"1", "0.5"}, {"44", "12.25"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "k ") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[3], "12.25") {
		t.Errorf("row = %q", lines[3])
	}
}

func TestPhaseStrip(t *testing.T) {
	rows := [][]float64{
		{0, 0, 0},
		{0, 1, 0},
		{0, 2, 1},
	}
	out := PhaseStrip(rows, 0)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "..." {
		t.Errorf("sync row = %q", lines[0])
	}
	if lines[2][1] != '9' {
		t.Errorf("max lag char = %q", lines[2])
	}
	if PhaseStrip(nil, 0) != "" {
		t.Error("empty strip")
	}
}

func TestHeatmap(t *testing.T) {
	hm := &Heatmap{
		Title: "lag",
		Data: [][]float64{
			{0, 0.5, 1},
			{1, math.NaN(), 0},
		},
	}
	svg := hm.SVG()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatal("not an SVG")
	}
	// Background + 5 cells (NaN skipped).
	if got := strings.Count(svg, "<rect"); got != 6 {
		t.Errorf("rects = %d, want 6", got)
	}
	if strings.Contains(svg, "NaN") {
		t.Error("NaN leaked")
	}
	// Max value renders pure red, min renders white.
	if !strings.Contains(svg, "#ff0000") {
		t.Error("max cell must be red")
	}
	if !strings.Contains(svg, "#ffffff") {
		t.Error("min cell must be white")
	}
}

func TestHeatmapEmptyAndClamped(t *testing.T) {
	empty := &Heatmap{}
	if svg := empty.SVG(); !strings.HasPrefix(svg, "<svg") {
		t.Error("empty heatmap must render")
	}
	clamped := &Heatmap{Data: [][]float64{{-5, 10}}, Lo: 0, Hi: 1}
	svg := clamped.SVG()
	if !strings.Contains(svg, "#ffffff") || !strings.Contains(svg, "#ff0000") {
		t.Error("clamping must map out-of-range values to scale ends")
	}
	flat := &Heatmap{Data: [][]float64{{3, 3}}}
	if svg := flat.SVG(); !strings.HasPrefix(svg, "<svg") {
		t.Error("flat data must render")
	}
}
