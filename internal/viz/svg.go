// Package viz renders the three visualization modes the paper's MATLAB
// tool provides (§3.2) — the circle (phase) diagram, phase/potential
// timelines — plus ITAC-style Gantt traces, as self-contained SVG files
// and quick ASCII previews. Only the standard library is used.
package viz

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// palette is a colorblind-friendly cycle for line series.
var palette = []string{
	"#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00",
	"#56b4e9", "#f0e442", "#000000",
}

// Color returns the i-th palette color.
func Color(i int) string { return palette[i%len(palette)] }

// Series is one named line of a 2-D plot.
type Series struct {
	Name   string
	Xs, Ys []float64
}

// LinePlot is a simple multi-series 2-D chart.
type LinePlot struct {
	Title, XLabel, YLabel string
	Series                []Series
	// W and H are the canvas size; zero selects 720×480.
	W, H int
}

const margin = 60

// SVG renders the plot.
func (p *LinePlot) SVG() string {
	w, h := p.W, p.H
	if w == 0 {
		w = 720
	}
	if h == 0 {
		h = 480
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		for i := range s.Xs {
			if math.IsNaN(s.Xs[i]) || math.IsNaN(s.Ys[i]) {
				continue
			}
			xmin = math.Min(xmin, s.Xs[i])
			xmax = math.Max(xmax, s.Xs[i])
			ymin = math.Min(ymin, s.Ys[i])
			ymax = math.Max(ymax, s.Ys[i])
		}
	}
	if xmin > xmax { // no data
		xmin, xmax, ymin, ymax = 0, 1, 0, 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	px := func(x float64) float64 {
		return margin + (x-xmin)/(xmax-xmin)*float64(w-2*margin)
	}
	py := func(y float64) float64 {
		return float64(h-margin) - (y-ymin)/(ymax-ymin)*float64(h-2*margin)
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		margin, h-margin, w-margin, h-margin)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		margin, margin, margin, h-margin)
	// Ticks: 5 per axis.
	for i := 0; i <= 5; i++ {
		x := xmin + (xmax-xmin)*float64(i)/5
		y := ymin + (ymax-ymin)*float64(i)/5
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`,
			px(x), h-margin, px(x), h-margin+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`,
			px(x), h-margin+18, fmtTick(x))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`,
			margin-5, py(y), margin, py(y))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%s</text>`,
			margin-8, py(y)+4, fmtTick(y))
	}
	// Labels and title.
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="14" text-anchor="middle">%s</text>`,
		w/2, h-15, esc(p.XLabel))
	fmt.Fprintf(&b, `<text x="15" y="%d" font-size="14" text-anchor="middle" transform="rotate(-90 15 %d)">%s</text>`,
		h/2, h/2, esc(p.YLabel))
	fmt.Fprintf(&b, `<text x="%d" y="25" font-size="16" text-anchor="middle" font-weight="bold">%s</text>`,
		w/2, esc(p.Title))
	// Series.
	for si, s := range p.Series {
		color := Color(si)
		var path strings.Builder
		pen := false
		for i := range s.Xs {
			if math.IsNaN(s.Xs[i]) || math.IsNaN(s.Ys[i]) {
				pen = false
				continue
			}
			cmd := "L"
			if !pen {
				cmd = "M"
				pen = true
			}
			fmt.Fprintf(&path, "%s%.2f %.2f ", cmd, px(s.Xs[i]), py(s.Ys[i]))
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.8"/>`,
			path.String(), color)
		// Legend.
		ly := margin + 18*si
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="3"/>`,
			w-margin-120, ly, w-margin-95, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12">%s</text>`,
			w-margin-90, ly+4, esc(s.Name))
	}
	b.WriteString(`</svg>`)
	return b.String()
}

func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e5 || (av < 1e-2 && av > 0):
		return fmt.Sprintf("%.1e", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// CircleDiagram renders the paper's circle view: oscillator phases as dots
// on the unit circle, colored by instantaneous frequency (blue fast,
// yellow slow), as described in §3.2.
type CircleDiagram struct {
	Title string
	// Phases are the oscillator phases (radians; only the 2π remainder
	// determines the position).
	Phases []float64
	// Freqs, when non-nil, colors each dot by relative frequency.
	Freqs []float64
	// W is the square canvas size; zero selects 420.
	W int
}

// SVG renders the diagram.
func (c *CircleDiagram) SVG() string {
	w := c.W
	if w == 0 {
		w = 420
	}
	cx, cy := float64(w)/2, float64(w)/2
	rad := float64(w)/2 - 40

	var fmin, fmax float64
	if len(c.Freqs) == len(c.Phases) && len(c.Freqs) > 0 {
		fmin, fmax = c.Freqs[0], c.Freqs[0]
		for _, f := range c.Freqs {
			fmin = math.Min(fmin, f)
			fmax = math.Max(fmax, f)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, w, w, w, w)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="none" stroke="#888"/>`, cx, cy, rad)
	fmt.Fprintf(&b, `<text x="%.1f" y="22" font-size="14" text-anchor="middle" font-weight="bold">%s</text>`,
		cx, esc(c.Title))
	for i, th := range c.Phases {
		x := cx + rad*math.Cos(th)
		y := cy - rad*math.Sin(th)
		color := Color(0)
		if len(c.Freqs) == len(c.Phases) && fmax > fmin {
			// Blue (fast) → yellow (slow), matching the paper's coloring.
			u := (c.Freqs[i] - fmin) / (fmax - fmin)
			r := int(240 * (1 - u))
			g := int(228*(1-u) + 114*u)
			bl := int(66*(1-u) + 178*u)
			color = fmt.Sprintf("#%02x%02x%02x", r, g, bl)
		}
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="6" fill="%s" stroke="black" stroke-width="0.5"/>`,
			x, y, color)
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// GanttSpan is one bar of a Gantt trace.
type GanttSpan struct {
	Row        int
	Start, End float64
	// Comm selects the red (communication) coloring; compute is white.
	Comm bool
}

// Gantt renders an ITAC-style per-rank timeline: white compute, red
// communication — the visual language of the paper's Fig. 2 insets.
type Gantt struct {
	Title   string
	Rows    int
	Spans   []GanttSpan
	T0, T1  float64
	W, RowH int
}

// SVG renders the trace.
func (g *Gantt) SVG() string {
	w := g.W
	if w == 0 {
		w = 900
	}
	rh := g.RowH
	if rh == 0 {
		rh = 14
	}
	h := 2*margin + g.Rows*rh
	t0, t1 := g.T0, g.T1
	if t1 <= t0 {
		t1 = t0 + 1
	}
	px := func(t float64) float64 {
		return margin + (t-t0)/(t1-t0)*float64(w-2*margin)
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&b, `<text x="%d" y="25" font-size="16" text-anchor="middle" font-weight="bold">%s</text>`,
		w/2, esc(g.Title))
	spans := append([]GanttSpan(nil), g.Spans...)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Row < spans[j].Row })
	for _, s := range spans {
		if s.End < t0 || s.Start > t1 || s.Row < 0 || s.Row >= g.Rows {
			continue
		}
		x0 := px(math.Max(s.Start, t0))
		x1 := px(math.Min(s.End, t1))
		y := margin + s.Row*rh
		fill := "#ffffff"
		stroke := "#bbbbbb"
		if s.Comm {
			fill = "#cc2222"
			stroke = "#cc2222"
		}
		fmt.Fprintf(&b, `<rect x="%.2f" y="%d" width="%.2f" height="%d" fill="%s" stroke="%s" stroke-width="0.4"/>`,
			x0, y, math.Max(x1-x0, 0.3), rh-2, fill, stroke)
	}
	for r := 0; r < g.Rows; r += max(1, g.Rows/10) {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" text-anchor="end">%d</text>`,
			margin-6, margin+r*rh+rh-4, r)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="13" text-anchor="middle">time [s]</text>`,
		w/2, h-15)
	b.WriteString(`</svg>`)
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
