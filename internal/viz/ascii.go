package viz

import (
	"fmt"
	"math"
	"strings"
)

// Sparkline renders values as a compact unicode bar strip for terminal
// output.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(levels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}

// Table renders rows as an aligned plain-text table with a header.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// PhaseStrip renders one row per time sample with a character per
// oscillator indicating its lag bucket: '.' in sync, digits growing with
// the lag. It is the terminal analogue of the phase-timeline view.
func PhaseStrip(normPhases [][]float64, maxRows int) string {
	if len(normPhases) == 0 {
		return ""
	}
	stride := 1
	if maxRows > 0 && len(normPhases) > maxRows {
		stride = len(normPhases) / maxRows
	}
	var hi float64
	for _, row := range normPhases {
		for _, v := range row {
			hi = math.Max(hi, v)
		}
	}
	var b strings.Builder
	for k := 0; k < len(normPhases); k += stride {
		for _, v := range normPhases[k] {
			switch {
			case hi == 0 || v < 0.05*hi:
				b.WriteByte('.')
			default:
				d := int(v / hi * 9)
				if d > 9 {
					d = 9
				}
				b.WriteByte(byte('0' + d))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
