package kuramoto

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{N: 1}); err == nil {
		t.Error("want error for N < 2")
	}
	if _, err := New(Config{N: 5, K: -1}); err == nil {
		t.Error("want error for K < 0")
	}
}

func TestDeterministicDraws(t *testing.T) {
	a, _ := New(Config{N: 10, FreqStd: 1, Seed: 3})
	b, _ := New(Config{N: 10, FreqStd: 1, Seed: 3})
	for i := range a.Omegas() {
		if a.Omegas()[i] != b.Omegas()[i] {
			t.Fatal("same seed gave different frequencies")
		}
	}
}

func TestIdenticalFrequenciesSyncForAnyPositiveK(t *testing.T) {
	// σ = 0: all frequencies equal. Any K > 0 must pull spread initial
	// phases into near-complete synchrony.
	m, err := New(Config{N: 30, K: 0.5, FreqMean: 1, FreqStd: 0, Seed: 1, SpreadInitial: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(200, 201)
	if err != nil {
		t.Fatal(err)
	}
	if r := res.AsymptoticOrder(0.2); r < 0.95 {
		t.Errorf("identical oscillators r∞ = %v, want near 1", r)
	}
}

func TestIncoherenceBelowKc(t *testing.T) {
	m, _ := New(Config{N: 200, K: 0.1, FreqMean: 0, FreqStd: 1, Seed: 2, SpreadInitial: true})
	// K = 0.1 << K_c ≈ 1.6: stays incoherent.
	res, err := m.Run(60, 121)
	if err != nil {
		t.Fatal(err)
	}
	if r := res.AsymptoticOrder(0.25); r > 0.3 {
		t.Errorf("sub-critical r∞ = %v, want small", r)
	}
}

func TestSynchronizationAboveKc(t *testing.T) {
	m, _ := New(Config{N: 200, K: 4, FreqMean: 0, FreqStd: 1, Seed: 2, SpreadInitial: true})
	// K = 4 ≈ 2.5·K_c: strong partial synchronization.
	res, err := m.Run(60, 121)
	if err != nil {
		t.Fatal(err)
	}
	if r := res.AsymptoticOrder(0.25); r < 0.7 {
		t.Errorf("super-critical r∞ = %v, want large", r)
	}
}

func TestCriticalCoupling(t *testing.T) {
	m, _ := New(Config{N: 10, FreqStd: 1, Seed: 1})
	want := math.Sqrt(8 / math.Pi)
	if got := m.CriticalCoupling(); math.Abs(got-want) > 1e-12 {
		t.Errorf("K_c = %v, want %v", got, want)
	}
	m0, _ := New(Config{N: 10, FreqStd: 0, Seed: 1})
	if m0.CriticalCoupling() != 0 {
		t.Error("K_c must be 0 for identical frequencies")
	}
}

func TestSweepCouplingMonotoneAcrossTransition(t *testing.T) {
	base := Config{N: 150, FreqMean: 0, FreqStd: 1, Seed: 7, SpreadInitial: true}
	pts, err := SweepCoupling(base, []float64{0.2, 1.6, 4.0}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if !(pts[0].R < pts[2].R) {
		t.Errorf("transition not visible: r(0.2)=%v r(4)=%v", pts[0].R, pts[2].R)
	}
	if pts[2].R < 0.6 {
		t.Errorf("strong coupling r = %v, want > 0.6", pts[2].R)
	}
}

func TestPhaseSlipsAtWeakCoupling(t *testing.T) {
	// Well below K_c, drifting oscillators continually slip against the
	// mean phase — the behaviour the POM potentials forbid.
	m, _ := New(Config{N: 50, K: 0.05, FreqMean: 0, FreqStd: 1, Seed: 4, SpreadInitial: true})
	res, err := m.Run(100, 501)
	if err != nil {
		t.Fatal(err)
	}
	if s := res.PhaseSlips(); s == 0 {
		t.Error("weakly coupled Kuramoto should show phase slips")
	}
}

func TestRunErrors(t *testing.T) {
	m, _ := New(Config{N: 4, FreqStd: 1, Seed: 1})
	if _, err := m.Run(0, 10); err == nil {
		t.Error("want error for tEnd <= 0")
	}
}

func TestOrderTimelineLength(t *testing.T) {
	m, _ := New(Config{N: 10, K: 1, FreqStd: 0.5, Seed: 5, SpreadInitial: true})
	res, err := m.Run(10, 51)
	if err != nil {
		t.Fatal(err)
	}
	ot := res.OrderTimeline()
	if len(ot) != len(res.Ts) {
		t.Fatalf("timeline length %d vs %d samples", len(ot), len(res.Ts))
	}
	for _, r := range ot {
		if r < 0 || r > 1+1e-9 {
			t.Fatalf("order parameter out of range: %v", r)
		}
	}
}

// TestNewRejectsNonFiniteParameters is the regression test for the
// input-validation hole: before the fix a NaN/Inf coupling or frequency
// parameter sailed through New (NaN fails every sign check) and
// surfaced as solver underflow or silent NaN phases deep inside a sweep.
func TestNewRejectsNonFiniteParameters(t *testing.T) {
	bad := []Config{
		{N: 5, K: math.NaN()},
		{N: 5, K: math.Inf(1)},
		{N: 5, FreqMean: math.NaN()},
		{N: 5, FreqMean: math.Inf(-1)},
		{N: 5, FreqStd: math.NaN()},
		{N: 5, FreqStd: math.Inf(1)},
		{N: 5, FreqStd: -0.5},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d (%+v): want validation error", i, cfg)
		}
	}
}

// TestRunStreamMatchesRun pins the unified-runtime port: the rows
// streamed through sim.RunStream are bit-for-bit the rows Run
// materializes, and the shared OrderAccumulator reproduces
// AsymptoticOrder exactly.
func TestRunStreamMatchesRun(t *testing.T) {
	cfg := Config{N: 40, K: 1.2, FreqMean: 0, FreqStd: 1, Seed: 9, SpreadInitial: true}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(30, 121)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	order := &sim.OrderAccumulator{FinalFraction: 0.25}
	k := 0
	_, err = m2.RunStream(30, 121, sim.Tee(order, sim.SinkFunc(func(tt float64, y []float64) {
		if math.Float64bits(tt) != math.Float64bits(res.Ts[k]) {
			t.Fatalf("sample %d time %v differs from materialized %v", k, tt, res.Ts[k])
		}
		for i := range y {
			if math.Float64bits(y[i]) != math.Float64bits(res.Theta[k][i]) {
				t.Fatalf("sample %d component %d differs", k, i)
			}
		}
		k++
	})))
	if err != nil {
		t.Fatal(err)
	}
	if k != len(res.Ts) {
		t.Fatalf("streamed %d rows, materialized %d", k, len(res.Ts))
	}
	want := res.AsymptoticOrder(0.25)
	if got := order.Asymptotic(); math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("streamed r∞ = %v, materialized %v (must be bitwise equal)", got, want)
	}
}
