package kuramoto

import (
	"math"

	"repro/internal/mathx"
)

// CountSlipsRows counts phase-slip events over materialized trajectory
// rows: for each oscillator, the drift-corrected phase increment
// (θ_i(t_k) − θ_i(t_{k−1})) − (θ̄(t_k) − θ̄(t_{k−1})) is accumulated, and
// every excursion past 2π counts one slip and resets the accumulator.
// This is the reference implementation the streaming SlipCounter is
// pinned against bitwise; Result.PhaseSlips delegates here.
func CountSlipsRows(rows [][]float64) int {
	if len(rows) == 0 {
		return 0
	}
	// The ensemble means are oscillator-independent; hoisting them out of
	// the per-oscillator loop is bitwise-neutral (same values, same
	// per-oscillator accumulation order) and turns the pass from
	// O(n²·samples) into O(n·samples).
	means := make([]float64, len(rows))
	for k, row := range rows {
		means[k] = mathx.Mean(row)
	}
	n := len(rows[0])
	slips := 0
	for i := 0; i < n; i++ {
		var acc float64
		prev := rows[0][i]
		for k := 1; k < len(rows); k++ {
			cur := rows[k][i]
			acc += (cur - prev) - (means[k] - means[k-1])
			if math.Abs(acc) >= mathx.TwoPi {
				slips++
				acc = 0
			}
			prev = cur
		}
	}
	return slips
}

// SlipCounter counts phase slips and measures per-oscillator drift
// online — the streaming counterpart of Result.PhaseSlips that needs no
// materialized trajectory, so million-point Kuramoto sweeps can count
// slips in O(N) memory. It implements sim.Sink; the slip total is
// bit-for-bit CountSlipsRows (and hence Result.PhaseSlips) on the same
// sample rows: per oscillator the same drift-corrected increments are
// accumulated in the same order, against the same ensemble means.
type SlipCounter struct {
	n     int
	k     int
	total int

	prev     []float64
	prevMean float64
	acc      []float64
	perOsc   []int

	t0, t1          float64
	y0, y1          []float64
	mean0, lastMean float64
}

// Begin implements sim.Sink.
func (s *SlipCounter) Begin(n, _ int) {
	s.n = n
	s.k = 0
	s.total = 0
	if cap(s.prev) < n {
		s.prev = make([]float64, n)
		s.acc = make([]float64, n)
		s.perOsc = make([]int, n)
		s.y0 = make([]float64, n)
		s.y1 = make([]float64, n)
	}
	s.prev, s.acc, s.perOsc = s.prev[:n], s.acc[:n], s.perOsc[:n]
	s.y0, s.y1 = s.y0[:n], s.y1[:n]
	for i := 0; i < n; i++ {
		s.acc[i] = 0
		s.perOsc[i] = 0
	}
}

// Sample implements sim.Sink.
func (s *SlipCounter) Sample(t float64, theta []float64) {
	mean := mathx.Mean(theta)
	if s.k == 0 {
		copy(s.prev, theta)
		s.prevMean = mean
		s.t0, s.mean0 = t, mean
		copy(s.y0, theta)
	} else {
		drift := mean - s.prevMean
		for i := 0; i < s.n; i++ {
			s.acc[i] += (theta[i] - s.prev[i]) - drift
			if math.Abs(s.acc[i]) >= mathx.TwoPi {
				s.perOsc[i]++
				s.total++
				s.acc[i] = 0
			}
			s.prev[i] = theta[i]
		}
		s.prevMean = mean
	}
	s.t1 = t
	copy(s.y1, theta)
	s.lastMean = mean
	s.k++
}

// Slips returns the total slip count — equal to Result.PhaseSlips on the
// materialized run.
func (s *SlipCounter) Slips() int { return s.total }

// PerOscillator returns each oscillator's slip count (the total is their
// sum). The returned slice aliases internal state; copy it to retain it
// across a reused counter.
func (s *SlipCounter) PerOscillator() []int { return s.perOsc }

// DriftRates returns each oscillator's mean drift rate relative to the
// ensemble mean over the whole run: the secant
// ((θ_i(t_end) − θ_i(0)) − (θ̄(t_end) − θ̄(0))) / Δt. Oscillators locked
// to the mean field drift at ≈ 0; drifting (unentrained) oscillators at
// their residual natural frequency. Returns nil when fewer than two
// samples arrived.
func (s *SlipCounter) DriftRates() []float64 {
	if s.k < 2 || s.t1 <= s.t0 {
		return nil
	}
	dt := s.t1 - s.t0
	meanDrift := s.lastMean - s.mean0
	out := make([]float64, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = ((s.y1[i] - s.y0[i]) - meanDrift) / dt
	}
	return out
}

// Drifting counts oscillators whose |drift rate| exceeds tol — the
// unentrained population below the synchronization transition.
func (s *SlipCounter) Drifting(tol float64) int {
	count := 0
	for _, d := range s.DriftRates() {
		if math.Abs(d) > tol {
			count++
		}
	}
	return count
}
