// Package kuramoto implements the plain Kuramoto model (paper Eq. 1) as
// the baseline the physical oscillator model is compared against:
//
//	dθ_i/dt = ω_i + (K/N)·Σ_j sin(θ_j − θ_i)
//
// with all-to-all coupling, heterogeneous natural frequencies, and the
// classic order-parameter phenomenology: incoherence below the critical
// coupling K_c and partial synchronization above it. The package exists to
// demonstrate §2.2.2's objections quantitatively — global coupling acts
// like a per-period barrier, phase slips are possible, and spontaneous
// desynchronization of bottlenecked programs cannot occur.
//
// Model implements sim.System, so Kuramoto runs route through the same
// unified runtime as the POM core: RunStream drives the shared
// accumulator sinks, and the sweep/archive machinery (sweep.RunReduce,
// sweep.RunArchive) works over Kuramoto points unchanged.
package kuramoto

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/ode"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Config parameterizes a Kuramoto run.
type Config struct {
	// N is the number of oscillators.
	N int
	// K is the global coupling strength.
	K float64
	// FreqMean and FreqStd parameterize the Gaussian distribution of
	// natural frequencies g(ω).
	FreqMean, FreqStd float64
	// Seed makes frequency and phase draws reproducible.
	Seed uint64
	// SpreadInitial draws initial phases uniformly on [0, 2π) when true;
	// otherwise all start at zero.
	SpreadInitial bool
	// Atol and Rtol are solver tolerances; 0 selects 1e-8 / 1e-6.
	Atol, Rtol float64
}

// Model is a configured Kuramoto system.
type Model struct {
	cfg    Config
	omegas []float64
	theta0 []float64
}

// New draws frequencies and initial phases and returns the model.
func New(cfg Config) (*Model, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("kuramoto: need N >= 2, got %d", cfg.N)
	}
	if cfg.K < 0 {
		return nil, errors.New("kuramoto: negative coupling")
	}
	// A non-finite coupling or frequency distribution would not fail here
	// or in New's draws — it would poison the right-hand side and surface
	// as a solver step-size underflow (or silent NaN phases) deep inside a
	// sweep. Reject it at the boundary instead.
	if math.IsNaN(cfg.K) || math.IsInf(cfg.K, 0) {
		return nil, fmt.Errorf("kuramoto: non-finite coupling %v", cfg.K)
	}
	if math.IsNaN(cfg.FreqMean) || math.IsInf(cfg.FreqMean, 0) {
		return nil, fmt.Errorf("kuramoto: non-finite frequency mean %v", cfg.FreqMean)
	}
	if cfg.FreqStd < 0 || math.IsNaN(cfg.FreqStd) || math.IsInf(cfg.FreqStd, 0) {
		return nil, fmt.Errorf("kuramoto: frequency spread must be finite and nonnegative, got %v", cfg.FreqStd)
	}
	rng := stats.NewRNG(cfg.Seed)
	m := &Model{cfg: cfg}
	m.omegas = make([]float64, cfg.N)
	m.theta0 = make([]float64, cfg.N)
	for i := range m.omegas {
		m.omegas[i] = rng.NormalMS(cfg.FreqMean, cfg.FreqStd)
		if cfg.SpreadInitial {
			m.theta0[i] = rng.Uniform(0, mathx.TwoPi)
		}
	}
	return m, nil
}

// Omegas returns the drawn natural frequencies.
func (m *Model) Omegas() []float64 { return m.omegas }

// CriticalCoupling returns the mean-field onset K_c = 2/(π·g(ω̄)) for the
// Gaussian frequency distribution, g(ω̄) = 1/(σ√(2π)):
//
//	K_c = 2σ·√(2/π)... precisely K_c = 2/(π·g(0-centered peak)) = σ·√(8/π).
func (m *Model) CriticalCoupling() float64 {
	if m.cfg.FreqStd == 0 {
		return 0
	}
	return m.cfg.FreqStd * math.Sqrt(8/math.Pi)
}

// Dim implements sim.System.
func (m *Model) Dim() int { return m.cfg.N }

// InitialState implements sim.System.
func (m *Model) InitialState() []float64 { return m.theta0 }

// Eval implements sim.System. It uses the order-parameter trick:
// Σ sin(θ_j − θ_i) = N·r·sin(ψ − θ_i), reducing the cost from O(N²) to
// O(N) per evaluation.
func (m *Model) Eval(_ float64, y, dydt []float64) {
	r, psi := stats.OrderParameter(y)
	kr := m.cfg.K * r
	for i := range y {
		dydt[i] = m.omegas[i] + kr*math.Sin(psi-y[i])
	}
}

// Solver implements sim.Tuned.
func (m *Model) Solver() sim.Solver {
	return sim.Solver{Atol: m.cfg.Atol, Rtol: m.cfg.Rtol}
}

// Result is a completed Kuramoto integration.
type Result struct {
	Ts    []float64
	Theta [][]float64
	Stats ode.Stats
}

// Run integrates the model to tEnd with nSamples uniform samples through
// the unified sim runtime.
func (m *Model) Run(tEnd float64, nSamples int) (*Result, error) {
	if tEnd <= 0 {
		return nil, errors.New("kuramoto: tEnd must be positive")
	}
	res, err := sim.Run(m, tEnd, nSamples)
	if err != nil {
		return nil, fmt.Errorf("kuramoto: %w", err)
	}
	return &Result{Ts: res.Ts, Theta: res.Ys, Stats: res.Stats}, nil
}

// RunStream integrates like Run but emits the sample rows to sink instead
// of materializing them — the constant-memory path Kuramoto coupling
// sweeps pair with the shared accumulator sinks.
func (m *Model) RunStream(tEnd float64, nSamples int, sink sim.Sink) (ode.Stats, error) {
	if tEnd <= 0 {
		return ode.Stats{}, errors.New("kuramoto: tEnd must be positive")
	}
	return sim.RunStream(m, tEnd, nSamples, sink)
}

// OrderTimeline returns r(t) at every sample.
func (r *Result) OrderTimeline() []float64 {
	out := make([]float64, len(r.Theta))
	for k, th := range r.Theta {
		out[k], _ = stats.OrderParameter(th)
	}
	return out
}

// AsymptoticOrder averages r(t) over the final fraction of the run.
func (r *Result) AsymptoticOrder(finalFraction float64) float64 {
	n := len(r.Theta)
	if n == 0 {
		return 0
	}
	start := n - int(float64(n)*finalFraction)
	if start < 0 {
		start = 0
	}
	if start >= n {
		start = n - 1
	}
	var sum float64
	for k := start; k < n; k++ {
		rk, _ := stats.OrderParameter(r.Theta[k])
		sum += rk
	}
	return sum / float64(n-start)
}

// SweepPoint is one (K, r∞) sample of the synchronization transition.
type SweepPoint struct {
	K, R float64
}

// SweepCoupling measures the asymptotic order parameter across a range of
// couplings — the classic Kuramoto bifurcation diagram used to place K_c.
// Each point streams through the shared OrderAccumulator instead of
// materializing its trajectory, so the sweep holds O(N) state per point;
// the accumulated r∞ is bit-for-bit AsymptoticOrder(0.25) on the
// materialized run.
func SweepCoupling(base Config, ks []float64, tEnd float64) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(ks))
	for _, k := range ks {
		cfg := base
		cfg.K = k
		m, err := New(cfg)
		if err != nil {
			return nil, err
		}
		order := &sim.OrderAccumulator{FinalFraction: 0.25}
		if _, err := m.RunStream(tEnd, 201, order); err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{K: k, R: order.Asymptotic()})
	}
	return out, nil
}

// PhaseSlips counts events where an oscillator's phase distance to the
// mean phase grows past 2π — the slips that the paper's non-periodic
// potentials forbid but the sine coupling allows. The count is computed
// by CountSlipsRows (mean-field drift removed: increments are compared
// against the ensemble mean), which the streaming SlipCounter reproduces
// bitwise without the materialized trajectory.
func (r *Result) PhaseSlips() int { return CountSlipsRows(r.Theta) }
