package kuramoto

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/noise"
	"repro/internal/potential"
	"repro/internal/sim"
	"repro/internal/topology"
)

// TestSlipCounterMatchesPhaseSlips pins the streaming slip counter
// bitwise against the materialized Result.PhaseSlips on a subcritical
// Kuramoto run where drifting oscillators actually slip.
func TestSlipCounterMatchesPhaseSlips(t *testing.T) {
	cfg := Config{N: 10, K: 0.4, FreqMean: 0, FreqStd: 1, Seed: 11, SpreadInitial: true}
	const tEnd, nSamples = 60.0, 301

	mMat, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mMat.Run(tEnd, nSamples)
	if err != nil {
		t.Fatal(err)
	}

	mStr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counter := &SlipCounter{}
	if _, err := mStr.RunStream(tEnd, nSamples, counter); err != nil {
		t.Fatal(err)
	}

	want := res.PhaseSlips()
	if want == 0 {
		t.Fatal("test run produced no slips; pick stronger drift parameters")
	}
	if counter.Slips() != want {
		t.Fatalf("streamed slips = %d, materialized = %d", counter.Slips(), want)
	}
	sum := 0
	for _, c := range counter.PerOscillator() {
		sum += c
	}
	if sum != counter.Slips() {
		t.Fatalf("per-oscillator slips sum to %d, total is %d", sum, counter.Slips())
	}

	// Drift rates: far below K_c most oscillators drift; the rates must
	// be finite and the drifting count consistent with them.
	rates := counter.DriftRates()
	if len(rates) != cfg.N {
		t.Fatalf("DriftRates length %d, want %d", len(rates), cfg.N)
	}
	drifting := 0
	for _, r := range rates {
		if math.IsNaN(r) || math.IsInf(r, 0) {
			t.Fatalf("non-finite drift rate %v", r)
		}
		if math.Abs(r) > 0.05 {
			drifting++
		}
	}
	if counter.Drifting(0.05) != drifting {
		t.Fatalf("Drifting(0.05) = %d, recount = %d", counter.Drifting(0.05), drifting)
	}
	if drifting == 0 {
		t.Error("subcritical run should leave some oscillators drifting")
	}
}

// TestSlipCounterLockedRun checks the locked regime: far above K_c the
// counter reports zero slips and no drifting oscillators.
func TestSlipCounterLockedRun(t *testing.T) {
	// Synchronized start: the whole-run secant of DriftRates would
	// otherwise pick up the spread-initial pull-in transient.
	cfg := Config{N: 10, K: 8, FreqMean: 0, FreqStd: 1, Seed: 4}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counter := &SlipCounter{}
	if _, err := m.RunStream(40, 201, counter); err != nil {
		t.Fatal(err)
	}
	if counter.Slips() != 0 {
		t.Errorf("locked run slipped %d times", counter.Slips())
	}
	if d := counter.Drifting(0.05); d != 0 {
		t.Errorf("locked run reports %d drifting oscillators", d)
	}
}

// slipPOMConfig builds a jittered POM whose frozen period noise makes
// ranks drift apart — the regime where slips occur in a non-Kuramoto
// family.
func slipPOMConfig(t *testing.T, dde bool, workers int) core.Config {
	t.Helper()
	tp, err := topology.NextNeighbor(16, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		N:         16,
		TComp:     0.8,
		TComm:     0.2,
		Potential: potential.Tanh{},
		Topology:  tp,
		LocalNoise: noise.Jitter{
			Dist: noise.Gaussian, Amp: 0.25, Refresh: 1, Seed: 9,
		},
		Workers: workers,
	}
	if dde {
		cfg.InteractionNoise = noise.ConstantLag{Lag: 0.05}
	}
	return cfg
}

// TestSlipCounterMatchesRowsPOM pins the counter on a different family
// and both solver paths: for the POM at Workers = 1 and 4, ODE and DDE,
// the streamed slip count equals CountSlipsRows over the materialized
// rows of an identical model — the sink is family-agnostic.
func TestSlipCounterMatchesRowsPOM(t *testing.T) {
	const tEnd, nSamples = 90.0, 181
	for _, tc := range []struct {
		name    string
		dde     bool
		workers int
	}{
		{"ode/workers1", false, 1},
		{"ode/workers4", false, 4},
		{"dde/workers1", true, 1},
		{"dde/workers4", true, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mMat, err := core.New(slipPOMConfig(t, tc.dde, tc.workers))
			if err != nil {
				t.Fatal(err)
			}
			res, err := mMat.Run(tEnd, nSamples)
			if err != nil {
				t.Fatal(err)
			}

			mStr, err := core.New(slipPOMConfig(t, tc.dde, tc.workers))
			if err != nil {
				t.Fatal(err)
			}
			counter := &SlipCounter{}
			if _, err := sim.RunStream(mStr, tEnd, nSamples, counter); err != nil {
				t.Fatal(err)
			}
			if want := CountSlipsRows(res.Theta); counter.Slips() != want {
				t.Fatalf("streamed slips = %d, rows reference = %d", counter.Slips(), want)
			}
		})
	}
}

// TestSlipCounterReuse checks that one counter can be reused across runs
// (Begin resets all state) — the sweep usage pattern.
func TestSlipCounterReuse(t *testing.T) {
	cfg := Config{N: 8, K: 0.3, FreqStd: 1, Seed: 2, SpreadInitial: true}
	counter := &SlipCounter{}
	var first int
	for round := 0; round < 2; round++ {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.RunStream(50, 201, counter); err != nil {
			t.Fatal(err)
		}
		if round == 0 {
			first = counter.Slips()
		} else if counter.Slips() != first {
			t.Fatalf("reused counter: %d slips, first run %d", counter.Slips(), first)
		}
	}
}
