package pom

import (
	"math"
	"testing"
)

func TestScalableScenarioResyncs(t *testing.T) {
	cfg := Scalable(16)
	cfg.LocalNoise = OneOffDelay(5, 5, 2, 1)
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(80, 401)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.ResyncTime(0.1); err != nil {
		t.Errorf("scalable scenario did not resync: %v", err)
	}
	wf, err := res.MeasureWave(5, 5, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if wf.Speed <= 0 {
		t.Error("no idle wave")
	}
}

func TestBottleneckedScenarioDesyncs(t *testing.T) {
	sigma := 1.5
	cfg := Bottlenecked(12, sigma)
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(300, 601)
	if err != nil {
		t.Fatal(err)
	}
	gaps := res.AsymptoticGaps(0.1)
	want := 2 * sigma / 3
	for i, g := range gaps {
		if math.Abs(math.Abs(g)-want) > 0.15 {
			t.Errorf("gap %d = %v, want ±%v", i, g, want)
		}
	}
}

func TestPotentialConstructors(t *testing.T) {
	if TanhPotential().Eval(0) != 0 {
		t.Error("tanh V(0)")
	}
	if DesyncPotential(3).Eval(5) != 1 {
		t.Error("desync saturation")
	}
	if math.Abs(KuramotoPotential().Eval(math.Pi/2)-1) > 1e-12 {
		t.Error("kuramoto sine")
	}
}

func TestTopologyConstructors(t *testing.T) {
	tp, err := NextNeighbor(8, true)
	if err != nil || tp.Degree(0) != 2 {
		t.Errorf("NextNeighbor: %v", err)
	}
	tp, err = Stencil(8, []int{-2, 1}, true)
	if err != nil || tp.Degree(0) != 2 {
		t.Errorf("Stencil: %v", err)
	}
	tp, err = AllToAll(5)
	if err != nil || tp.Degree(0) != 4 {
		t.Errorf("AllToAll: %v", err)
	}
}

func TestSimulateMPI(t *testing.T) {
	tp, err := NextNeighbor(20, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateMPI(Meggie(2), tp, Pisolver(), 100, 5, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	iterDur := tr.MeanIterationTime(0)
	tDelay := tr.IterEnds[5][19]
	wm, err := tr.MeasureIdleWave(5, tDelay, 0.5*iterDur, iterDur, false)
	if err != nil {
		t.Fatal(err)
	}
	if wm.SpeedRanksPerIter < 0.8 || wm.SpeedRanksPerIter > 1.3 {
		t.Errorf("wave speed = %v ranks/iter", wm.SpeedRanksPerIter)
	}
	// Undisturbed run path.
	res2, err := SimulateMPI(Meggie(2), tp, Pisolver(), 20, -1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Makespan <= 0 {
		t.Error("empty makespan")
	}
}

func TestGaussianJitterFacade(t *testing.T) {
	n := GaussianJitter(0.1, 1, 3)
	if n.Zeta(0, 0.5) == 0 && n.Zeta(1, 7.5) == 0 {
		t.Error("jitter silent")
	}
}

func TestMachinePresetsFacade(t *testing.T) {
	if Meggie(4).Cores() != 40 {
		t.Error("Meggie cores")
	}
	if SuperMUCNG(2).Cores() != 48 {
		t.Error("SuperMUC-NG cores")
	}
	if STREAM().Name != "STREAM" || Schoenauer().Name == "" || Pisolver().Name == "" {
		t.Error("kernel names")
	}
}
