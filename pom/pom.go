// Package pom is the public API of the physical-oscillator-model library:
// a compact facade over the internal packages that implement the paper
// "Physical Oscillator Model for Supercomputing" (Afzal, Hager, Wellein).
//
// The three entry points mirror how the paper is used in practice:
//
//   - NewModel / Model.Run integrate the coupled-oscillator system (Eq. 2)
//     for a chosen potential, topology, and noise configuration;
//   - Scalable and Bottlenecked build the two canonical scenario
//     configurations of §5 in one call;
//   - SimulateMPI runs the matching bulk-synchronous MPI program on the
//     discrete-event cluster simulator for trace-level validation.
//
// See the examples/ directory for complete programs.
package pom

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/noise"
	"repro/internal/potential"
	"repro/internal/topology"
)

// Re-exported model types. The aliases keep one coherent import for
// library users while the implementation lives in focused internal
// packages.
type (
	// Config fully parameterizes an oscillator-model run (Eq. 2).
	Config = core.Config
	// Model is a configured oscillator system.
	Model = core.Model
	// Result is a completed integration with analysis methods.
	Result = core.Result
	// WaveFront is a measured idle-wave propagation front.
	WaveFront = core.WaveFront
	// Topology is the T_ij dependency structure.
	Topology = topology.Topology
	// Potential is the interaction potential V(Δθ).
	Potential = potential.Potential
	// MachineConfig describes simulated cluster hardware.
	MachineConfig = cluster.MachineConfig
	// Kernel is an MPI micro-benchmark workload model.
	Kernel = kernels.Kernel
)

// Initial-condition re-exports.
const (
	Synchronized   = core.Synchronized
	Desynchronized = core.Desynchronized
	RandomPhases   = core.RandomPhases
	CustomPhases   = core.CustomPhases
)

// Protocol and wait-mode re-exports (β and κ rules).
const (
	Eager          = topology.Eager
	Rendezvous     = topology.Rendezvous
	SeparateWaits  = topology.SeparateWaits
	GroupedWaitall = topology.GroupedWaitall
)

// NewModel validates cfg and builds an oscillator model.
func NewModel(cfg Config) (*Model, error) { return core.New(cfg) }

// TanhPotential returns the synchronizing potential of Eq. (3).
func TanhPotential() Potential { return potential.Tanh{} }

// DesyncPotential returns the desynchronizing potential of Eq. (4) with
// interaction horizon sigma.
func DesyncPotential(sigma float64) Potential { return potential.NewDesync(sigma) }

// KuramotoPotential returns the classic sine coupling of Eq. (1).
func KuramotoPotential() Potential { return potential.KuramotoSine{} }

// NextNeighbor returns the d = ±1 stencil topology.
func NextNeighbor(n int, periodic bool) (*Topology, error) {
	return topology.NextNeighbor(n, periodic)
}

// Stencil returns the topology with the given signed offsets.
func Stencil(n int, offsets []int, periodic bool) (*Topology, error) {
	return topology.Stencil(n, offsets, periodic)
}

// AllToAll returns full Kuramoto-style connectivity.
func AllToAll(n int) (*Topology, error) { return topology.AllToAll(n) }

// OneOffDelay returns local noise that freezes rank for duration·period
// starting at start — the paper's idle-wave trigger. period is the
// oscillator period; the injected extra slowdown is 100 periods, which
// effectively halts the oscillator for the window.
func OneOffDelay(rank int, start, duration, period float64) noise.Local {
	return noise.Delay{Rank: rank, Start: start, Duration: duration, Extra: 100 * period}
}

// GaussianJitter returns frozen Gaussian period noise with standard
// deviation sigma, refreshed every refresh time units.
func GaussianJitter(sigma, refresh float64, seed uint64) noise.Local {
	return noise.Jitter{Dist: noise.Gaussian, Amp: sigma, Refresh: refresh, Seed: seed}
}

// Scalable returns the canonical resource-scalable configuration of
// §5.2.1: n oscillators, ±1 chain, tanh potential, unit period.
func Scalable(n int) Config {
	tp, err := topology.NextNeighbor(n, false)
	if err != nil {
		panic(err) // n < 2 is a programming error at this level
	}
	return Config{
		N:         n,
		TComp:     0.8,
		TComm:     0.2,
		Potential: potential.Tanh{},
		Topology:  tp,
	}
}

// Bottlenecked returns the canonical resource-bottlenecked configuration
// of §5.2.2: n oscillators, ±1 chain, desynchronizing potential with the
// given interaction horizon, a small symmetric-breaking perturbation.
func Bottlenecked(n int, sigma float64) Config {
	cfg := Scalable(n)
	cfg.Potential = potential.NewDesync(sigma)
	cfg.Init = core.RandomPhases
	cfg.PerturbSeed = 1
	cfg.PerturbAmp = 0.02
	return cfg
}

// Meggie returns the paper's primary benchmark machine model.
func Meggie(sockets int) MachineConfig { return cluster.Meggie(sockets) }

// SuperMUCNG returns the paper's second benchmark machine model.
func SuperMUCNG(sockets int) MachineConfig { return cluster.SuperMUCNG(sockets) }

// MPIResult is a completed MPI-simulation with its trace.
type MPIResult = cluster.Result

// SimulateMPI runs a bulk-synchronous MPI program (one compute phase and
// one neighbor exchange per iteration) for the given kernel on the
// machine, with an optional one-off delay of extraIters iterations of
// extra work injected at (delayRank, delayIter). Pass delayRank < 0 for an
// undisturbed run.
func SimulateMPI(mc MachineConfig, tp *Topology, k Kernel, iters int,
	delayRank, delayIter int, extraIters float64) (*MPIResult, error) {
	progs, err := cluster.BulkSynchronous(tp, k.Workload(), 1024, iters)
	if err != nil {
		return nil, err
	}
	opts := cluster.Options{}
	if delayRank >= 0 {
		opts.Delays = []cluster.DelayInjection{{
			Rank:  delayRank,
			Iter:  delayIter,
			Extra: extraIters * k.CoreSeconds,
		}}
	}
	sim, err := cluster.NewSim(mc, progs, opts)
	if err != nil {
		return nil, err
	}
	return sim.Run()
}

// STREAM, Schoenauer and Pisolver return the paper's three kernels.
func STREAM() Kernel     { return kernels.STREAM() }
func Schoenauer() Kernel { return kernels.Schoenauer() }
func Pisolver() Kernel   { return kernels.Pisolver() }
