package repro_test

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links/images: [text](target). Targets
// with spaces or parens are not used in this repository's docs.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// TestMarkdownLinks walks every Markdown file in the repository and
// checks that relative links point at files or directories that exist —
// the docs rot check CI runs on every PR. External links (http, https,
// mailto) and pure anchors are skipped; anchors on relative links are
// stripped before the existence check.
func TestMarkdownLinks(t *testing.T) {
	var files []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found")
	}
	for _, file := range files {
		body, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", file, m[1], resolved)
			}
		}
	}
}
