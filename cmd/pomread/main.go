// Command pomread inspects disk-backed sweep archives written by
// sweep.RunArchive, pomsim -archive, or examples/archivesweep — the
// post-hoc analysis entry point for archived trajectories, the role the
// trace browser plays for ITAC files in the paper's workflow.
//
// Modes:
//
//	pomread -dir runs/desync              # per-shard and whole-archive summary
//	pomread -dir runs/desync -index 17    # dump one point's record
//	pomread -dir runs/desync -verify      # CRC-check every record
//	pomread -dir runs/desync -stats       # format/codec/compression report
//	pomread -dir runs/scan -merge out     # compact into a canonical archive
//	pomread -dir runs/scan -merge out -merge-codec raw   # ... uncompressed
//	pomread -dir out -compare out2        # record-level equality of two archives
//	pomread -dir runs/scan -missing 64    # points of 0..63 not yet archived
//
// The dump prints the parameter vector, metrics, sample dimensions,
// first/last rows, and — when the record embeds a trace — its per-rank
// utilization. -verify walks every record through its checksum and
// reports the first corruption, so a damaged archive is diagnosed
// instead of silently mis-read.
//
// -stats decodes every record and reports, per shard and in total, the
// format generation (POMARC1/POMARC2), the record-codec mix (raw vs
// delta-compressed), on-disk bytes per point, and the compression
// ratio against the canonical raw payload encoding — the number to
// check before deciding whether a sweep should archive raw (see
// PERFORMANCE.md, "Archive compression").
//
// -merge, -compare, and -missing are the read-side half of the
// distributed sweeps (internal/dsweep): merge compacts a fleet's
// per-worker shards into a canonical layout (ascending point order,
// fixed shard packing, records re-encoded with -merge-codec — two
// merges of the same records are identical file-for-file even when the
// sources mix codecs, the chaos-test invariant), compare verifies two
// archives hold bitwise-identical records regardless of shard layout
// or codec, and missing reports sweep coverage.
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"

	"repro/internal/archive"
	"repro/internal/dsweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pomread: ")

	var (
		dir      = flag.String("dir", "", "archive directory (required)")
		index    = flag.Int("index", -1, "dump the record of this point index (-1 = summarize the archive)")
		verify   = flag.Bool("verify", false, "read and CRC-check every record")
		rows     = flag.Int("rows", 2, "sample rows to print from each end of a dumped record")
		stats    = flag.Bool("stats", false, "report format generations, codec mix, and compression ratio")
		merge    = flag.String("merge", "", "compact -dir into a canonical archive at this (empty) directory")
		perShard = flag.Int("per-shard", 0, "records per merged shard (0 = default)")
		mergeC   = flag.String("merge-codec", "", "record codec of merged shards: delta | raw (empty = delta)")
		compare  = flag.String("compare", "", "verify -dir and this archive hold bitwise-identical records")
		missing  = flag.Int("missing", 0, "report which of points 0..N-1 are absent from -dir")
	)
	flag.Parse()
	if *dir == "" {
		log.Fatal("-dir is required")
	}

	switch {
	case *merge != "":
		codec, err := archive.ParseCodec(*mergeC)
		if err != nil {
			log.Fatal(err)
		}
		st, err := dsweep.MergeWith(*dir, *merge, *perShard, codec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("merged %d points into %d canonical %s shard(s) at %s\n",
			st.Points, st.Shards, codec, *merge)
		return
	case *compare != "":
		if err := dsweep.Equal(*dir, *compare); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("OK: %s and %s hold bitwise-identical records\n", *dir, *compare)
		return
	case *missing > 0:
		gaps, err := dsweep.Missing(*dir, *missing)
		if err != nil {
			log.Fatal(err)
		}
		if len(gaps) == 0 {
			fmt.Printf("OK: all %d points archived\n", *missing)
			return
		}
		fmt.Printf("%d of %d points missing: %v\n", len(gaps), *missing, gaps)
		return
	}

	a, err := archive.OpenDir(*dir)
	if err != nil {
		log.Fatal(err)
	}
	// Read-only close: the records are already decoded, so a close
	// failure cannot corrupt anything — discard it visibly.
	defer func() { _ = a.Close() }()

	switch {
	case *stats:
		doStats(a)
	case *verify:
		doVerify(a)
	case *index >= 0:
		dump(a, uint64(*index), *rows)
	default:
		summarize(a, *dir)
	}
}

// summarize prints the shard table and the point-index coverage.
func summarize(a *archive.Archive, dir string) {
	var bytes int64
	for _, s := range a.Shards() {
		fmt.Printf("%-24s %6d records  %10d bytes\n", filepath.Base(s.Path), s.Len(), s.Size())
		bytes += s.Size()
	}
	idx := a.Indices()
	if len(idx) == 0 {
		fmt.Printf("%s: empty archive\n", dir)
		return
	}
	gaps := 0
	for k := 1; k < len(idx); k++ {
		if idx[k] != idx[k-1]+1 {
			gaps++
		}
	}
	fmt.Printf("%d points in %d shards, %d bytes (%.0f B/point), indices %d..%d",
		a.Len(), len(a.Shards()), bytes, float64(bytes)/float64(a.Len()), idx[0], idx[len(idx)-1])
	if gaps > 0 {
		fmt.Printf(", %d gap(s) — resumable", gaps)
	}
	fmt.Println()
}

// dump prints one decoded record.
func dump(a *archive.Archive, index uint64, edgeRows int) {
	rec, err := a.Read(index)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("point %d\n", rec.Index)
	fmt.Printf("  params:  %v\n", rec.Params)
	fmt.Printf("  metrics: %v\n", rec.Metrics)
	fmt.Printf("  samples: %d rows × width %d\n", rec.NSamples(), rec.Width)
	n := rec.NSamples()
	for k := 0; k < n; k++ {
		if k == edgeRows && n > 2*edgeRows {
			fmt.Printf("    ... %d rows elided ...\n", n-2*edgeRows)
			k = n - edgeRows - 1
			continue
		}
		fmt.Printf("    t=%-10.4g %v\n", rec.Ts[k], rec.Row(k))
	}
	if rec.Trace == nil {
		fmt.Println("  trace:   none")
		return
	}
	fmt.Printf("  trace:   %d ranks, makespan %.4g\n", rec.Trace.N(), rec.Trace.End)
	for _, u := range rec.Trace.UtilizationReport() {
		fmt.Printf("    rank %-3d compute %8.4g  comm %8.4g  (%.0f%% compute)\n",
			u.Rank, u.Compute, u.Comm, 100*u.ComputeFraction)
	}
}

// doStats reports the format generation, record-codec mix, and
// compression of every shard: on-disk payload bytes against the
// canonical raw payload encoding of the same records.
func doStats(a *archive.Archive) {
	var totalRecs int
	var totalDisk, totalPayload, totalCanon int64
	totalMix := map[archive.Codec]int{}
	for _, s := range a.Shards() {
		var payload, canon int64
		mix := map[archive.Codec]int{}
		for k := 0; k < s.Len(); k++ {
			c, err := s.RecordCodec(k)
			if err != nil {
				log.Fatal(err)
			}
			mix[c]++
			totalMix[c]++
			p, err := s.ReadRaw(k)
			if err != nil {
				log.Fatal(err)
			}
			payload += int64(len(p))
			cb, err := s.ReadCanonical(k)
			if err != nil {
				log.Fatal(err)
			}
			canon += int64(len(cb))
		}
		fmt.Printf("%-24s POMARC%d  %6d records  %10d bytes  %s  %.2fx\n",
			filepath.Base(s.Path), s.Version(), s.Len(), s.Size(),
			mixString(mix), ratio(canon, payload))
		totalRecs += s.Len()
		totalDisk += s.Size()
		totalPayload += payload
		totalCanon += canon
	}
	if totalRecs == 0 {
		fmt.Println("empty archive")
		return
	}
	fmt.Printf("%d records in %d shard(s): %d bytes on disk (%.1f B/point), %s\n",
		totalRecs, len(a.Shards()), totalDisk, float64(totalDisk)/float64(totalRecs), mixString(totalMix))
	fmt.Printf("payload %d bytes vs %d canonical raw: %.2fx compression (%.1f -> %.1f B/point)\n",
		totalPayload, totalCanon, ratio(totalCanon, totalPayload),
		float64(totalCanon)/float64(totalRecs), float64(totalPayload)/float64(totalRecs))
}

// mixString renders a codec→count map as "12 delta + 3 raw".
func mixString(mix map[archive.Codec]int) string {
	parts := ""
	for _, c := range []archive.Codec{archive.CodecDelta, archive.CodecRaw} {
		if mix[c] == 0 {
			continue
		}
		if parts != "" {
			parts += " + "
		}
		parts += fmt.Sprintf("%d %s", mix[c], c)
	}
	if parts == "" {
		return "no records"
	}
	return parts
}

// ratio guards the canonical/payload division against empty shards.
func ratio(canon, payload int64) float64 {
	if payload == 0 {
		return 1
	}
	return float64(canon) / float64(payload)
}

// doVerify reads every record, which CRC-checks every payload.
func doVerify(a *archive.Archive) {
	checked := 0
	err := a.Iter(func(rec *archive.Record) error {
		checked++
		return nil
	})
	if err != nil {
		log.Fatalf("corruption after %d good records: %v", checked, err)
	}
	fmt.Printf("OK: %d records verified across %d shards\n", checked, len(a.Shards()))
}
