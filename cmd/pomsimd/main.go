// Command pomsimd serves simulations over HTTP: clients POST a scenario
// spec JSON (any registered family) and stream the sample rows back as
// NDJSON, or drive the asynchronous job API (submit / status / cancel /
// fetch). Completed runs land in an archive-backed result cache keyed
// by the spec's canonical hash, so a repeated spec is answered from
// disk, byte-identical to the fresh run, without occupying a worker.
// Admission control (-admit token-bucket) sheds load with typed 429s
// before work is queued. See internal/serve for the runtime and
// ARCHITECTURE.md ("Service mode") for the request lifecycle.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/archive"
	"repro/internal/serve"
)

// sysClock adapts the wall clock to serve.Clock. This is the one place
// in the service where real time enters; everything under internal/serve
// derives every decision from the injected clock.
type sysClock struct{}

//pomvet:allow wallclock the serve boundary: the single injection point of real time into the service
func (sysClock) Now() time.Time { return time.Now() }

func main() {
	var (
		addr     = flag.String("addr", "localhost:8432", "listen address")
		workers  = flag.Int("workers", 2, "simulation worker fleet size")
		queue    = flag.Int("queue", 16, "job queue depth (admitted but not yet running)")
		cacheDir = flag.String("cache", "", "result-cache archive directory (required)")
		admit    = flag.String("admit", "always", "admission policy: always | token-bucket")
		burst    = flag.Int("burst", 8, "token-bucket burst (with -admit token-bucket)")
		rate     = flag.Float64("rate", 1, "token-bucket refill rate in jobs/second (with -admit token-bucket)")
		snapTTL  = flag.Duration("snapshot-ttl", time.Second, "state snapshot staleness bound")
		codecStr = flag.String("archive-codec", "delta", "record codec for cached shards: delta | raw")
	)
	flag.Parse()

	if *cacheDir == "" {
		log.Fatal("pomsimd: -cache DIR is required")
	}
	codec, err := archive.ParseCodec(*codecStr)
	if err != nil {
		log.Fatal(err)
	}
	var admission serve.Admission
	switch *admit {
	case "always":
		admission = serve.AlwaysAdmit{}
	case "token-bucket":
		if *burst < 1 || *rate < 0 {
			log.Fatalf("pomsimd: bad token bucket: burst=%d rate=%v", *burst, *rate)
		}
		admission = serve.NewTokenBucket(*burst, *rate)
	default:
		log.Fatalf("pomsimd: unknown admission policy %q (always | token-bucket)", *admit)
	}

	srv, err := serve.New(serve.Config{
		Workers:     *workers,
		QueueDepth:  *queue,
		Admission:   admission,
		Clock:       sysClock{},
		CacheDir:    *cacheDir,
		Codec:       codec,
		SnapshotTTL: *snapTTL,
	})
	if err != nil {
		log.Fatal(err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(sctx) // best effort; Close below is the backstop
	}()

	fmt.Printf("pomsimd: serving on http://%s (workers=%d queue=%d admit=%s cache=%s)\n",
		*addr, *workers, *queue, *admit, *cacheDir)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		_ = srv.Close()
		log.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
}
