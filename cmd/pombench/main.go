// Pombench emits the repo's headline performance numbers as machine-
// readable JSON, so CI can archive them as a workflow artifact
// (BENCH_archive.json) and a fleet operator can diff runs without
// scraping `go test -bench` text:
//
//   - on-disk bytes/point for raw vs delta archive codecs at the
//     megasweep (N=8, 201 samples) and archivesweep (N=8, 101 samples)
//     shapes, plus the compression ratio,
//   - archive codec throughput (encode/decode, canonical MB/s),
//   - cluster engine throughput (events/s, eager and rendezvous).
//
// The trajectory corpus comes from real desynchronization-model runs —
// the same model family the examples sweep — so the compression numbers
// reflect what production archives actually store, not synthetic data.
//
//	go run ./cmd/pombench                     # print to stdout
//	go run ./cmd/pombench -out BENCH_archive.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/archive"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/noise"
	"repro/internal/potential"
	"repro/internal/sweep"
	"repro/internal/topology"
)

// shapeResult is one archive-shape measurement.
type shapeResult struct {
	Name              string  `json:"name"`
	Points            int     `json:"points"`
	Width             int     `json:"width"`
	Samples           int     `json:"samples"`
	RawBytesPerPoint  float64 `json:"raw_bytes_per_point"`
	DeltaBytesPerPt   float64 `json:"delta_bytes_per_point"`
	CompressionRatio  float64 `json:"compression_ratio"`
	CanonicalPerPoint float64 `json:"canonical_payload_bytes_per_point"`
}

// codecResult is the codec-throughput measurement, in canonical
// (uncompressed payload) MB/s so the two codecs are comparable.
type codecResult struct {
	EncodeRawMBps   float64 `json:"encode_raw_mbps"`
	EncodeDeltaMBps float64 `json:"encode_delta_mbps"`
	DecodeRawMBps   float64 `json:"decode_raw_mbps"`
	DecodeDeltaMBps float64 `json:"decode_delta_mbps"`
}

// engineResult is the cluster-engine throughput measurement.
type engineResult struct {
	EagerEventsPerSec      float64 `json:"eager_events_per_sec"`
	RendezvousEventsPerSec float64 `json:"rendezvous_events_per_sec"`
}

type report struct {
	Shapes []shapeResult `json:"shapes"`
	Codec  codecResult   `json:"codec"`
	Engine engineResult  `json:"engine"`
}

type shapeSpec struct {
	name     string
	points   int
	n        int
	samples  int
	tEnd     float64
	withComm bool // megasweep adds coupling override + local noise
}

func main() {
	log.SetFlags(0)
	var (
		out    = flag.String("out", "", "write JSON here (empty = stdout)")
		points = flag.Int("points", 16, "sweep points per archive shape")
	)
	flag.Parse()

	shapes := []shapeSpec{
		{name: "megasweep", points: *points, n: 8, samples: 201, tEnd: 40, withComm: true},
		{name: "archivesweep", points: *points, n: 8, samples: 101, tEnd: 20},
	}

	var rep report
	var corpus []*archive.Record // megasweep-shape records, for codec timing
	for _, sh := range shapes {
		res, recs, err := measureShape(sh)
		if err != nil {
			log.Fatal(err)
		}
		rep.Shapes = append(rep.Shapes, res)
		if corpus == nil {
			corpus = recs
		}
	}

	codec, err := measureCodec(corpus)
	if err != nil {
		log.Fatal(err)
	}
	rep.Codec = codec

	eng, err := measureEngine()
	if err != nil {
		log.Fatal(err)
	}
	rep.Engine = eng

	js, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	js = append(js, '\n')
	if *out == "" {
		os.Stdout.Write(js)
		return
	}
	if err := os.WriteFile(*out, js, 0o644); err != nil {
		log.Fatal(err)
	}
}

// pointFunc builds the ArchivePointFunc for one shape: a real
// desynchronization-model run streamed into the record, exactly like
// examples/megasweep and examples/archivesweep.
func pointFunc(sh shapeSpec) sweep.ArchivePointFunc {
	return func(ctx context.Context, i int, params []float64, rec *archive.RecordWriter) error {
		tp, err := topology.NextNeighbor(sh.n, false)
		if err != nil {
			return err
		}
		cfg := core.Config{
			N: sh.n, TComp: 0.8, TComm: 0.2,
			Potential:   potential.NewDesync(params[0]),
			Topology:    tp,
			Init:        core.RandomPhases,
			PerturbSeed: uint64(i + 1),
			PerturbAmp:  0.02,
		}
		if sh.withComm {
			cfg.CouplingOverride = params[1]
			cfg.LocalNoise = noise.Delay{Rank: sh.n / 3, Start: 5, Duration: 1, Extra: 20}
		}
		m, err := core.New(cfg)
		if err != nil {
			return err
		}
		if _, err := m.RunStream(sh.tEnd, sh.samples, rec); err != nil {
			return err
		}
		return rec.Finish(nil, nil)
	}
}

func shapeGen(sh shapeSpec) func(i int) []float64 {
	return func(i int) []float64 {
		sigma := 0.6 + 1.8*float64(i)/float64(sh.points)
		if !sh.withComm {
			return []float64{sigma}
		}
		bk := 1.0 + 3.0*float64(i%4)/4.0
		return []float64{sigma, bk}
	}
}

// measureShape archives one shape under both codecs and reports the
// on-disk bytes/point. It returns the decoded records so the codec
// timing can reuse the corpus.
func measureShape(sh shapeSpec) (shapeResult, []*archive.Record, error) {
	res := shapeResult{Name: sh.name, Points: sh.points, Width: sh.n, Samples: sh.samples}
	root, err := os.MkdirTemp("", "pombench-*")
	if err != nil {
		return res, nil, err
	}
	defer os.RemoveAll(root)

	var recs []*archive.Record
	for _, codec := range []archive.Codec{archive.CodecRaw, archive.CodecDelta} {
		dir := filepath.Join(root, sh.name+"-"+codec.String())
		run := sweep.ArchiveRun{Dir: dir, Hi: sh.points, Workers: 1, Codec: codec}
		if _, err := run.Run(context.Background(), shapeGen(sh), pointFunc(sh)); err != nil {
			return res, nil, err
		}
		onDisk, err := dirSize(dir)
		if err != nil {
			return res, nil, err
		}
		perPoint := float64(onDisk) / float64(sh.points)
		if codec == archive.CodecRaw {
			res.RawBytesPerPoint = perPoint
		} else {
			res.DeltaBytesPerPt = perPoint
		}
		if codec == archive.CodecDelta {
			a, err := archive.OpenDir(dir)
			if err != nil {
				return res, nil, err
			}
			var canon int
			err = a.Iter(func(rec *archive.Record) error {
				recs = append(recs, rec)
				return nil
			})
			if err == nil {
				for _, idx := range a.Indices() {
					b, cerr := a.ReadCanonical(idx)
					if cerr != nil {
						err = cerr
						break
					}
					canon += len(b)
				}
			}
			_ = a.Close() // read-only close
			if err != nil {
				return res, nil, err
			}
			res.CanonicalPerPoint = float64(canon) / float64(sh.points)
		}
	}
	if res.DeltaBytesPerPt > 0 {
		res.CompressionRatio = res.RawBytesPerPoint / res.DeltaBytesPerPt
	}
	return res, recs, nil
}

func dirSize(dir string) (int64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range ents {
		info, err := e.Info()
		if err != nil {
			return 0, err
		}
		total += info.Size()
	}
	return total, nil
}

// measureCodec times encode (Writer.Append through the streaming path)
// and decode (Archive read + payload decode) for both codecs over the
// megasweep-shape corpus. Throughput is canonical payload MB/s.
func measureCodec(corpus []*archive.Record) (codecResult, error) {
	var res codecResult
	if len(corpus) == 0 {
		return res, fmt.Errorf("pombench: empty corpus")
	}
	var canonical int64
	for _, rec := range corpus {
		canonical += int64(8 + 4 + 8*len(rec.Params) + 8 + (1+rec.Width)*8*rec.NSamples() + 4 + 8*len(rec.Metrics) + 4)
	}
	for _, codec := range []archive.Codec{archive.CodecRaw, archive.CodecDelta} {
		enc, dec, err := timeCodec(corpus, codec, canonical)
		if err != nil {
			return res, err
		}
		if codec == archive.CodecRaw {
			res.EncodeRawMBps, res.DecodeRawMBps = enc, dec
		} else {
			res.EncodeDeltaMBps, res.DecodeDeltaMBps = enc, dec
		}
	}
	return res, nil
}

func timeCodec(corpus []*archive.Record, codec archive.Codec, canonical int64) (encMBps, decMBps float64, err error) {
	root, err := os.MkdirTemp("", "pombench-codec-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(root)

	// Encode: stream the corpus into shards until ~1s has elapsed.
	var encBytes int64
	var elapsed time.Duration
	for pass := 0; elapsed < time.Second; pass++ {
		dir := filepath.Join(root, fmt.Sprintf("enc-%d", pass))
		w, err := archive.CreateWith(dir, 0, codec)
		if err != nil {
			return 0, 0, err
		}
		//pomvet:allow wallclock benchmark timing only, never simulation state
		start := time.Now()
		for i, rec := range corpus {
			// Re-index so repeated passes stay collision-free.
			clone := *rec
			clone.Index = uint64(i)
			if err := w.Append(&clone); err != nil {
				return 0, 0, err
			}
		}
		if err := w.Close(); err != nil {
			return 0, 0, err
		}
		//pomvet:allow wallclock benchmark timing only
		elapsed += time.Since(start)
		encBytes += canonical
	}
	encMBps = float64(encBytes) / 1e6 / elapsed.Seconds()

	// Decode: read the last encoded archive back until ~1s has elapsed.
	dir := filepath.Join(root, "dec")
	w, err := archive.CreateWith(dir, 0, codec)
	if err != nil {
		return 0, 0, err
	}
	for i, rec := range corpus {
		clone := *rec
		clone.Index = uint64(i)
		if err := w.Append(&clone); err != nil {
			return 0, 0, err
		}
	}
	if err := w.Close(); err != nil {
		return 0, 0, err
	}
	a, err := archive.OpenDir(dir)
	if err != nil {
		return 0, 0, err
	}
	defer func() { _ = a.Close() }() // read-only close
	var decBytes int64
	elapsed = 0
	for elapsed < time.Second {
		//pomvet:allow wallclock benchmark timing only
		start := time.Now()
		if err := a.Iter(func(*archive.Record) error { return nil }); err != nil {
			return 0, 0, err
		}
		//pomvet:allow wallclock benchmark timing only
		elapsed += time.Since(start)
		decBytes += canonical
	}
	decMBps = float64(decBytes) / 1e6 / elapsed.Seconds()
	return encMBps, decMBps, nil
}

// measureEngine reproduces BenchmarkEngineEager/-Rendezvous outside the
// testing harness: a 40-rank STREAM bulk-synchronous program on the
// Meggie machine model, repeated for ~1s per message size.
func measureEngine() (engineResult, error) {
	var res engineResult
	for _, msgBytes := range []float64{1024, 1 << 20} {
		tp, err := topology.NextNeighbor(40, false)
		if err != nil {
			return res, err
		}
		k := kernels.STREAM()
		progs, err := cluster.BulkSynchronous(tp, k.Workload(), msgBytes, 200)
		if err != nil {
			return res, err
		}
		var events int
		var elapsed time.Duration
		for elapsed < time.Second {
			sim, err := cluster.NewSim(cluster.Meggie(4), progs, cluster.Options{})
			if err != nil {
				return res, err
			}
			//pomvet:allow wallclock benchmark timing only, never simulation state
			start := time.Now()
			r, err := sim.Run()
			if err != nil {
				return res, err
			}
			//pomvet:allow wallclock benchmark timing only
			elapsed += time.Since(start)
			events += r.Events
		}
		perSec := float64(events) / elapsed.Seconds()
		if msgBytes == 1024 {
			res.EagerEventsPerSec = perSec
		} else {
			res.RendezvousEventsPerSec = perSec
		}
	}
	return res, nil
}
