// Command pomvet is the repo's determinism-aware static checker: a
// vet-style multichecker enforcing the source-level invariants the
// bitwise-reproducibility guarantees rest on. It loads the named
// packages (go list patterns; default ./...), runs the five analyzers
// from internal/analysis, and exits nonzero on any finding.
//
// Usage:
//
//	pomvet [-json] [-maprange=false] [...] [packages]
//
// Each analyzer has an enable/disable flag named after it. Findings
// print as file:line:col: analyzer: message, or as a JSON array with
// -json. Exit status: 0 clean, 1 findings, 2 load or usage errors.
// Suppress a single site with `//pomvet:allow <analyzer> <reason>` on
// the offending line, the line above, or the enclosing declaration's
// doc comment; the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	enabled := make(map[string]*bool)
	for _, a := range analysis.All() {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		enabled[a.Name] = flag.Bool(a.Name, true, doc)
	}
	flag.Parse()

	var active []*analysis.Analyzer
	for _, a := range analysis.All() {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	findings := analysis.Run(pkgs, active)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "pomvet: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}
