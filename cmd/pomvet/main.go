// Command pomvet is the repo's determinism-aware static checker: a
// vet-style multichecker enforcing the source-level invariants the
// bitwise-reproducibility guarantees rest on. It loads the named
// packages (go list patterns; default ./...), runs the analyzers
// from internal/analysis, and exits nonzero on any finding.
//
// Usage:
//
//	pomvet [-json] [-fix [-diff]] [-list] [-maprange=false] [...] [packages]
//
// Each analyzer has an enable/disable flag named after it; -list
// prints the roster with the one-line docs and exits. Findings print
// as file:line:col: analyzer: message, or as a JSON array with -json
// (each entry carries pos, end, message, and any suggested fix with
// byte-offset edits). -fix applies the suggested fixes in place; with
// -diff it prints the files that would change instead of writing them.
//
// Exit status: 0 clean (or every finding fixed), 1 findings remain,
// 2 load or usage errors.
//
// Suppress a single site with `//pomvet:allow <analyzer> <reason>` on
// the offending line, the line above, or the enclosing declaration's
// doc comment; the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run())
}

func usage() {
	w := flag.CommandLine.Output()
	fmt.Fprintln(w, "usage: pomvet [flags] [packages]")
	fmt.Fprintln(w, "")
	fmt.Fprintln(w, "Exit status: 0 clean (or every finding fixed), 1 findings remain,")
	fmt.Fprintln(w, "2 load or usage errors.")
	fmt.Fprintln(w, "")
	flag.PrintDefaults()
}

func run() int {
	flag.CommandLine.Usage = usage
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (with end positions and fix edits)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	fix := flag.Bool("fix", false, "apply suggested fixes to the source in place")
	diff := flag.Bool("diff", false, "with -fix: print the files that would change, do not write")
	enabled := make(map[string]*bool)
	for _, a := range analysis.All() {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		enabled[a.Name] = flag.Bool(a.Name, true, doc)
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%-12s %s\n", a.Name, doc)
		}
		return 0
	}
	if *diff && !*fix {
		fmt.Fprintln(os.Stderr, "pomvet: -diff requires -fix")
		return 2
	}

	var active []*analysis.Analyzer
	for _, a := range analysis.All() {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	findings := analysis.Run(pkgs, active)

	if *fix {
		fixed, err := analysis.ApplyFixes(findings)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if *diff {
			for _, f := range sortedKeys(fixed) {
				fmt.Printf("pomvet: would fix %s\n", f)
			}
		} else if len(fixed) > 0 {
			if err := analysis.WriteFixes(fixed); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			for _, f := range sortedKeys(fixed) {
				fmt.Printf("pomvet: fixed %s\n", f)
			}
		}
		// Findings whose fix was applied are resolved; report the rest.
		var rest []analysis.Finding
		for _, f := range findings {
			if f.Fix == nil || *diff {
				rest = append(rest, f)
			}
		}
		if !*diff {
			findings = rest
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "pomvet: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// sortedKeys returns the map's keys in sorted order for stable output.
func sortedKeys(m map[string][]byte) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
