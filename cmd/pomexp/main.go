// Command pomexp regenerates every table and figure of the paper's
// evaluation (experiments E1–E7 of DESIGN.md), prints the result tables,
// and writes SVG figures plus a machine-readable summary into -out.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pomexp: ")
	outDir := flag.String("out", "out", "output directory for SVGs and summary")
	only := flag.String("only", "", "run a single experiment: e1…e7 (empty = all)")
	flag.Parse()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	var report strings.Builder
	report.WriteString("# pomexp results\n\n")

	run := func(id string, fn func(dir string, rep *strings.Builder) error) {
		if *only != "" && *only != id {
			return
		}
		fmt.Printf("=== %s ===\n", strings.ToUpper(id))
		if err := fn(*outDir, &report); err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Println()
	}

	run("e1", runE1)
	run("e2", runE2)
	run("e3", runE34) // E3+E4 share the Fig. 2 grid
	run("e5", runE5)
	run("e6", runE6)
	run("e7", runE7)
	run("e8", runE8)
	run("e9", runE9)

	summary := filepath.Join(*outDir, "SUMMARY.md")
	if err := os.WriteFile(summary, []byte(report.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("summary written to %s\n", summary)
}

func runE1(dir string, rep *strings.Builder) error {
	res, err := experiments.Fig1aPotentials(5, 512)
	if err != nil {
		return err
	}
	plot := viz.LinePlot{
		Title:  "Fig. 1(a): interaction potentials (σ = 5)",
		XLabel: "phase difference θj − θi", YLabel: "V",
	}
	rows := make([][]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		plot.Series = append(plot.Series, viz.Series{Name: r.Name, Xs: r.Xs, Ys: r.Ys})
		rows = append(rows, []string{
			r.Name, fmt.Sprintf("%.4f", r.StableZero), fmt.Sprintf("%.4f", r.MeasuredZero),
		})
	}
	tbl := viz.Table([]string{"potential", "analytic zero", "measured zero"}, rows)
	fmt.Print(tbl)
	fmt.Fprintf(rep, "## E1 — Fig. 1(a)\n\n```\n%s```\n\n", tbl)
	return os.WriteFile(filepath.Join(dir, "fig1a_potentials.svg"), []byte(plot.SVG()), 0o644)
}

func runE2(dir string, rep *strings.Builder) error {
	res, err := experiments.Fig1bScalability(cluster.Meggie(1), 10, 3)
	if err != nil {
		return err
	}
	plot := viz.LinePlot{
		Title:  "Fig. 1(b): socket scalability (" + res.Machine + ")",
		XLabel: "processes per socket", YLabel: "memory bandwidth [MB/s]",
	}
	var rows [][]string
	for _, c := range res.Curves {
		xs := make([]float64, len(c.Points))
		ys := make([]float64, len(c.Points))
		for i, p := range c.Points {
			xs[i] = float64(p.Processes)
			ys[i] = p.BandwidthMBs
		}
		plot.Series = append(plot.Series, viz.Series{Name: c.Kernel, Xs: xs, Ys: ys})
		sat := "never (scalable)"
		if c.SaturationProcs > 0 {
			sat = fmt.Sprintf("%d cores", c.SaturationProcs)
		}
		rows = append(rows, []string{
			c.Kernel,
			fmt.Sprintf("%.0f", c.Points[0].BandwidthMBs),
			fmt.Sprintf("%.0f", c.Points[len(c.Points)-1].BandwidthMBs),
			sat,
		})
	}
	tbl := viz.Table([]string{"kernel", "1-core MB/s", "10-core MB/s", "saturation"}, rows)
	fmt.Print(tbl)
	fmt.Fprintf(rep, "## E2 — Fig. 1(b)\n\n```\n%s```\n\n", tbl)
	return os.WriteFile(filepath.Join(dir, "fig1b_scalability.svg"), []byte(plot.SVG()), 0o644)
}

func runE34(dir string, rep *strings.Builder) error {
	rows, err := experiments.Fig2All()
	if err != nil {
		return err
	}
	var tblRows [][]string
	for _, r := range rows {
		tblRows = append(tblRows, []string{
			r.Label,
			fmt.Sprintf("%.2f", r.MPI.WaveSpeed),
			fmt.Sprintf("%.2f", r.MPI.PostSpread),
			fmt.Sprintf("%.2f", r.Model.WaveSpeed),
			fmt.Sprintf("%.3f", r.Model.MeanAbsGap),
			fmt.Sprintf("%.3f", r.Model.StableZero),
			fmt.Sprintf("%v", r.Model.Resynced),
		})
	}
	tbl := viz.Table(
		[]string{"panel", "MPI wave[r/it]", "MPI postspread", "model wave[r/T]",
			"model |gap|", "2σ/3", "resync"},
		tblRows)
	fmt.Print(tbl)
	fmt.Fprintf(rep, "## E3+E4 — Fig. 2 corner cases\n\n```\n%s```\n\n", tbl)
	return nil
}

func runE5(dir string, rep *strings.Builder) error {
	res, err := experiments.WaveSpeedVsCoupling([]float64{0, 0.5, 1, 2, 4, 8})
	if err != nil {
		return err
	}
	var rows [][]string
	xs := make([]float64, 0, len(res.Model))
	ys := make([]float64, 0, len(res.Model))
	for _, p := range res.Model {
		speed := "no wave"
		if p.Propagated {
			speed = fmt.Sprintf("%.3f", p.Speed)
			xs = append(xs, p.BetaKappa)
			ys = append(ys, p.Speed)
		}
		rows = append(rows, []string{fmt.Sprintf("%g", p.BetaKappa), speed})
	}
	tbl := viz.Table([]string{"βκ", "model wave speed [ranks/period]"}, rows)
	fmt.Print(tbl)

	var mpiRows [][]string
	for _, p := range res.MPI {
		mpiRows = append(mpiRows, []string{
			p.Label, fmt.Sprintf("%.3f", p.Speed), fmt.Sprintf("%d", p.Reached),
		})
	}
	mpiTbl := viz.Table([]string{"MPI config", "speed [ranks/iter]", "ranks reached"}, mpiRows)
	fmt.Print(mpiTbl)
	fmt.Fprintf(rep, "## E5 — wave speed vs coupling\n\n```\n%s\n%s```\n\n", tbl, mpiTbl)

	plot := viz.LinePlot{
		Title:  "Idle-wave speed vs coupling βκ (model)",
		XLabel: "βκ", YLabel: "speed [ranks/period]",
		Series: []viz.Series{{Name: "tanh potential", Xs: xs, Ys: ys}},
	}
	return os.WriteFile(filepath.Join(dir, "e5_wavespeed.svg"), []byte(plot.SVG()), 0o644)
}

func runE6(dir string, rep *strings.Builder) error {
	res, err := experiments.StiffnessSweep([]float64{0.5, 1, 1.5, 2, 3})
	if err != nil {
		return err
	}
	var rows [][]string
	xs := make([]float64, len(res.SigmaSweep))
	ys := make([]float64, len(res.SigmaSweep))
	pred := make([]float64, len(res.SigmaSweep))
	for i, p := range res.SigmaSweep {
		rows = append(rows, []string{
			fmt.Sprintf("%g", p.Sigma),
			fmt.Sprintf("%.4f", p.MeanAbsGap),
			fmt.Sprintf("%.4f", p.PredictedGap),
		})
		xs[i] = p.Sigma
		ys[i] = p.MeanAbsGap
		pred[i] = p.PredictedGap
	}
	tbl := viz.Table([]string{"σ", "settled |gap|", "predicted 2σ/3"}, rows)
	fmt.Print(tbl)
	fmt.Printf("stiffness d=±1 → d=±1,−2: MPI speed ratio %.2f (paper ≈3), model gap ratio %.2f (theory 0.5)\n",
		res.Stiffness.MPISpeedRatio, res.Stiffness.ModelGapRatio)
	fmt.Fprintf(rep, "## E6 — stiffness / σ sweep\n\n```\n%s```\n\nMPI speed ratio %.2f, model gap ratio %.2f\n\n",
		tbl, res.Stiffness.MPISpeedRatio, res.Stiffness.ModelGapRatio)

	plot := viz.LinePlot{
		Title:  "Settled adjacent gap vs interaction horizon σ",
		XLabel: "σ", YLabel: "|Δθ| [rad]",
		Series: []viz.Series{
			{Name: "measured", Xs: xs, Ys: ys},
			{Name: "2σ/3", Xs: xs, Ys: pred},
		},
	}
	return os.WriteFile(filepath.Join(dir, "e6_sigma.svg"), []byte(plot.SVG()), 0o644)
}

func runE7(dir string, rep *strings.Builder) error {
	res, err := experiments.KuramotoBaseline([]float64{0.2, 0.8, 1.2, 1.6, 2.0, 3.0, 4.0})
	if err != nil {
		return err
	}
	var rows [][]string
	xs := make([]float64, len(res.Transition))
	ys := make([]float64, len(res.Transition))
	for i, p := range res.Transition {
		rows = append(rows, []string{fmt.Sprintf("%g", p.K), fmt.Sprintf("%.3f", p.R)})
		xs[i], ys[i] = p.K, p.R
	}
	tbl := viz.Table([]string{"K", "r∞"}, rows)
	fmt.Print(tbl)
	fmt.Printf("K_c (mean field) = %.3f; phase slips at K=0.05: %d\n",
		res.CriticalCoupling, res.WeakCouplingSlips)
	fmt.Printf("wave arrival spread: all-to-all %.3f periods vs ±1 ring %.3f periods\n",
		res.AllToAllArrivalSpread, res.NeighborArrivalSpread)
	fmt.Fprintf(rep, "## E7 — Kuramoto baseline\n\n```\n%s```\n\nK_c=%.3f slips=%d allToAllSpread=%.3f ringSpread=%.3f\n\n",
		tbl, res.CriticalCoupling, res.WeakCouplingSlips,
		res.AllToAllArrivalSpread, res.NeighborArrivalSpread)

	plot := viz.LinePlot{
		Title:  "Kuramoto synchronization transition (N=150, σω=1)",
		XLabel: "coupling K", YLabel: "asymptotic order parameter r",
		Series: []viz.Series{{Name: "r∞(K)", Xs: xs, Ys: ys}},
	}
	return os.WriteFile(filepath.Join(dir, "e7_kuramoto.svg"), []byte(plot.SVG()), 0o644)
}

func runE8(dir string, rep *strings.Builder) error {
	res, err := experiments.NoiseDecay([]float64{0, 0.1, 0.3, 0.6})
	if err != nil {
		return err
	}
	fmtLen := func(l float64) string {
		if l > 1e6 {
			return "∞ (undamped)"
		}
		return fmt.Sprintf("%.1f", l)
	}
	var rows [][]string
	for _, p := range res.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", p.NoiseAmp),
			fmtLen(p.MPIDecayLen),
			fmt.Sprintf("%.2f", p.MPIAmpAt1),
			fmt.Sprintf("%.2f", p.MPIAmpAt10),
			fmtLen(p.ModelDecayLen),
		})
	}
	tbl := viz.Table(
		[]string{"noise amp", "MPI decay λ [ranks]", "MPI amp@1", "MPI amp@10", "model decay λ"},
		rows)
	fmt.Print(tbl)
	fmt.Fprintf(rep, "## E8 — idle-wave decay under noise (§6 open question)\n\n```\n%s```\n\n", tbl)
	return nil
}

func runE9(dir string, rep *strings.Builder) error {
	res, err := experiments.CollectiveBarrier()
	if err != nil {
		return err
	}
	tbl := viz.Table(
		[]string{"program", "arrival spread [iters]", "ranks reached"},
		[][]string{
			{"±1 point-to-point", fmt.Sprintf("%.1f", res.P2PArrivalSpreadIters),
				fmt.Sprintf("%d", res.P2PReached)},
			{"per-iteration Allreduce", fmt.Sprintf("%.2f", res.CollectiveArrivalSpreadIters),
				fmt.Sprintf("%d", res.CollectiveReached)},
		})
	fmt.Print(tbl)
	fmt.Fprintf(rep, "## E9 — collectives as synchronizing barriers (§2.2.2, trace side)\n\n```\n%s```\n\n", tbl)
	return nil
}
