// Command mpisim runs the discrete-event MPI cluster simulator for a
// bulk-synchronous kernel, injects an optional one-off delay, and reports
// the trace metrics the paper reads from ITAC: idle-wave speed,
// desynchronization skew, per-rank communication fractions, and socket
// bandwidth. It can write an ITAC-style Gantt SVG.
//
// Examples:
//
//	mpisim -kernel pisolver -n 40 -delay-rank 5
//	mpisim -kernel stream -n 20 -offsets=-1,1 -svg out
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/kernels"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mpisim: ")

	var (
		kernelName = flag.String("kernel", "pisolver", "kernel: pisolver | stream | schoenauer")
		n          = flag.Int("n", 40, "number of MPI ranks")
		offsets    = flag.String("offsets", "-1,1", "communication stencil offsets")
		periodic   = flag.Bool("periodic", false, "ring instead of open chain")
		iters      = flag.Int("iters", 400, "bulk-synchronous iterations")
		msgBytes   = flag.Float64("msg", 1024, "message size in bytes (≤16384 eager)")
		machine    = flag.String("machine", "meggie", "machine model: meggie | supermuc-ng")
		delayRank  = flag.Int("delay-rank", -1, "rank receiving a one-off delay (-1 = none)")
		delayIter  = flag.Int("delay-iter", 50, "iteration of the delay")
		delayIters = flag.Float64("delay-len", 10, "delay length in iteration equivalents")
		noiseAmp   = flag.Float64("noise", 0, "deterministic per-iteration compute noise amplitude (fraction of sweep)")
		svgDir     = flag.String("svg", "", "directory for the Gantt SVG (empty = none)")
		csvPath    = flag.String("trace-csv", "", "write the full trace as CSV (empty = none)")
	)
	flag.Parse()

	k, err := kernels.ByName(*kernelName)
	if err != nil {
		log.Fatal(err)
	}
	offs, err := parseOffsets(*offsets)
	if err != nil {
		log.Fatal(err)
	}
	tp, err := topology.Stencil(*n, offs, *periodic)
	if err != nil {
		log.Fatal(err)
	}

	var mc cluster.MachineConfig
	switch *machine {
	case "meggie":
		mc = cluster.Meggie((*n + 9) / 10)
	case "supermuc-ng":
		mc = cluster.SuperMUCNG((*n + 23) / 24)
	default:
		log.Fatalf("unknown machine %q", *machine)
	}

	progs, err := cluster.BulkSynchronous(tp, k.Workload(), *msgBytes, *iters)
	if err != nil {
		log.Fatal(err)
	}
	opts := cluster.Options{}
	if *delayRank >= 0 {
		opts.Delays = []cluster.DelayInjection{{
			Rank: *delayRank, Iter: *delayIter, Extra: *delayIters * k.CoreSeconds,
		}}
	}
	if *noiseAmp > 0 {
		amp := *noiseAmp * k.CoreSeconds
		opts.ComputeNoise = func(rank, iter int) float64 {
			// Simple deterministic hash noise in [0, amp).
			h := uint64(rank+1)*0x9e3779b97f4a7c15 ^ uint64(iter+1)*0xbf58476d1ce4e5b9
			h ^= h >> 31
			return amp * float64(h>>11) / (1 << 53)
		}
	}

	sim, err := cluster.NewSim(mc, progs, opts)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	tr := res.Trace

	fmt.Printf("mpisim: %s on %s, N=%d stencil=%v iters=%d\n",
		k.Name, mc.Name, *n, offs, *iters)
	fmt.Printf("makespan %.4f s, %d events, mean iteration %.6f s\n",
		res.Makespan, res.Events, tr.MeanIterationTime(0))
	for s := range res.SocketBytes {
		if res.SocketBytes[s] > 0 {
			fmt.Printf("socket %d bandwidth: %.2f GB/s\n", s, res.AggregateBandwidth(s)/1e9)
		}
	}

	if *delayRank >= 0 && *delayIter > 0 {
		iterDur := tr.MeanIterationTime(0)
		tDelay := tr.IterEnds[*delayRank][*delayIter-1]
		if wm, err := tr.MeasureIdleWave(*delayRank, tDelay, 0.5*iterDur, iterDur, *periodic); err == nil {
			fmt.Printf("idle wave: %.3f ranks/iter (R²=%.2f, reached %d)\n",
				wm.SpeedRanksPerIter, wm.R2, wm.Reached)
		} else {
			fmt.Printf("idle wave: %v\n", err)
		}
		if dm, err := tr.MeasureDesync(res.Makespan*0.75, res.Makespan*0.97, 40); err == nil {
			fmt.Printf("asymptotic desync: spread %.3f iterations, adjacent skew %.4f\n",
				dm.Spread, dm.MeanAbsAdjacent)
		}
	}

	fracs := tr.CommFractions()
	var meanFrac float64
	for _, f := range fracs {
		meanFrac += f
	}
	fmt.Printf("mean communication fraction: %.3f\n", meanFrac/float64(len(fracs)))

	if *svgDir != "" {
		if err := writeGantt(*svgDir, tr, res.Makespan, k.Name); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Gantt SVG written to %s\n", *svgDir)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteCSV(f); err != nil {
			_ = f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace CSV written to %s\n", *csvPath)
	}
}

func parseOffsets(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad offset %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func writeGantt(dir string, tr *trace.Trace, makespan float64, title string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	g := viz.Gantt{
		Title: fmt.Sprintf("%s trace (white compute, red communication)", title),
		Rows:  tr.N(),
		T0:    0,
		T1:    makespan,
	}
	for r := 0; r < tr.N(); r++ {
		for _, sp := range tr.Spans[r] {
			g.Spans = append(g.Spans, viz.GanttSpan{
				Row: r, Start: sp.Start, End: sp.End,
				Comm: sp.Kind == trace.SpanComm,
			})
		}
	}
	return os.WriteFile(filepath.Join(dir, "trace.svg"), []byte(g.SVG()), 0o644)
}
