package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/archive"
	"repro/internal/dsweep"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// sweepOpts collects the -sweep-* flags of the distributed worker mode.
type sweepOpts struct {
	dir          string
	points       int
	param        string
	from, to     float64
	rangeSize    int
	ttl          time.Duration
	rangeWorkers int
	workerID     string
	coordinate   bool
}

// runDistributed joins (or starts) a fault-tolerant distributed sweep:
// this process becomes one lease-coordinated worker of the fleet
// sharing o.dir. The base scenario is swept along one parameter over a
// uniform grid of o.points values; each point's full trajectory and
// summary metrics land in the shared archive. Run any number of pomsim
// processes with the same -sweep flags (distinct -worker-id when hosts
// share a name) — they divide the grid through lease files alone, and
// a worker that dies mid-range is re-leased after -lease-ttl.
func runDistributed(spec *scenario.Spec, o sweepOpts) {
	if o.points <= 0 {
		log.Fatal("-sweep needs -sweep-points > 0")
	}
	if _, err := gridValue(o, 0); err != nil {
		log.Fatal(err)
	}
	// Fail on an unsweepable spec before touching the shared directory.
	if _, err := sweepSpec(spec, o, 0); err != nil {
		log.Fatal(err)
	}

	if o.coordinate {
		// Publish (or validate) the plan without claiming any work —
		// lets a launcher set the directory up before starting the
		// fleet, and doubles as a geometry check against a running one.
		rs := o.rangeSize
		if rs <= 0 {
			rs = dsweep.DefaultRangeSize
		}
		plan, err := dsweep.Coordinate(o.dir, o.points, rs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("plan published at %s: %d points in %d ranges of %d\n",
			o.dir, plan.N, plan.Ranges(), plan.RangeSize)
		return
	}

	gen := func(i int) []float64 {
		v, _ := gridValue(o, i)
		return []float64{v}
	}
	fn := func(ctx context.Context, i int, params []float64, rec *archive.RecordWriter) error {
		pt, err := sweepSpec(spec, o, params[0])
		if err != nil {
			return err
		}
		sys, tEnd, nSamples, err := pt.BuildSystem()
		if err != nil {
			return err
		}
		sum, err := sim.RunSummaryTo(sys, tEnd, nSamples, 0.1, 0.15, rec)
		if err != nil {
			return err
		}
		return rec.Finish(sum.Vector(), nil)
	}

	// ^C stops claiming new work and discards in-flight shards; the
	// lease protocol lets any other worker (or a rerun) pick up the
	// remainder.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	stats, err := dsweep.Run(ctx, dsweep.Config{
		Dir:          o.dir,
		N:            o.points,
		RangeSize:    o.rangeSize,
		TTL:          o.ttl,
		RangeWorkers: o.rangeWorkers,
		WorkerID:     o.workerID,
		Codec:        shardCodec,
	}, gen, fn)
	fmt.Printf("distributed sweep over %s: %d ranges, this worker leased %d (+%d stolen), completed %d, lost %d\n",
		o.dir, stats.Ranges, stats.Leased, stats.Stolen, stats.Completed, stats.Lost)
	fmt.Printf("points: %d archived, %d resumed/skipped, %d shards sealed\n",
		stats.Archived, stats.Skipped, stats.Shards)
	if err != nil {
		log.Fatalf("worker stopped: %v (rerun to resume; other workers are unaffected)", err)
	}
	missing, err := dsweep.Missing(o.dir, o.points)
	if err != nil {
		log.Fatal(err)
	}
	if len(missing) > 0 {
		// Possible when this worker finished its ranges while another
		// worker still holds (or abandoned) the rest.
		fmt.Printf("sweep not yet complete: %d of %d points still missing\n", len(missing), o.points)
		return
	}
	fmt.Printf("sweep complete: all %d points archived; canonicalize with\n  pomread -dir %s -merge MERGED_DIR\n",
		o.points, o.dir)
}

// gridValue maps point index i onto the swept parameter's value.
func gridValue(o sweepOpts, i int) (float64, error) {
	switch o.param {
	case "sigma":
		if o.points == 1 {
			return o.from, nil
		}
		return o.from + (o.to-o.from)*float64(i)/float64(o.points-1), nil
	case "seed":
		// Seeds are integers; a fractional or negative -sweep-from would
		// silently truncate through the uint64 conversion (the flag's
		// default 0.5 serves sigma sweeps), so refuse it up front —
		// runDistributed probes gridValue before touching the directory.
		if o.from < 0 || o.from != math.Trunc(o.from) {
			return 0, fmt.Errorf("seed sweeps need a non-negative integer -sweep-from, got %g (e.g. -sweep-from 0)", o.from)
		}
		return o.from + float64(i), nil
	default:
		return 0, fmt.Errorf("unknown -sweep-param %q (want sigma | seed)", o.param)
	}
}

// sweepSpec deep-copies the base spec (via its own JSON round trip, so
// concurrent points never share mutable state) and applies the swept
// parameter value.
func sweepSpec(spec *scenario.Spec, o sweepOpts, v float64) (*scenario.Spec, error) {
	var buf bytes.Buffer
	if err := spec.Save(&buf); err != nil {
		return nil, err
	}
	pt, err := scenario.Load(&buf)
	if err != nil {
		return nil, err
	}
	switch o.param {
	case "sigma":
		switch pt.Family {
		case "", "pom":
			pt.Potential.Sigma = v
		case "continuum":
			pt.Continuum.Potential.Sigma = v
		case "torus2d":
			pt.Torus2D.Potential.Sigma = v
		case "linstab":
			pt.Linstab.Potential.Sigma = v
		default:
			return nil, fmt.Errorf("family %q has no sigma to sweep", pt.Family)
		}
	case "seed":
		if v < 0 {
			return nil, fmt.Errorf("seed sweep reached negative seed %g (check -sweep-from)", v)
		}
		if pt.Family == "kuramoto" {
			pt.Kuramoto.Seed = uint64(v)
		} else {
			pt.PerturbSeed = uint64(v)
		}
	default:
		return nil, fmt.Errorf("unknown -sweep-param %q (want sigma | seed)", o.param)
	}
	return pt, nil
}
