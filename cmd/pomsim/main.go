// Command pomsim integrates the physical oscillator model from command
// line flags or a scenario JSON — the role of the paper's MATLAB GUI. It
// prints the settled state, wave metrics, and an ASCII phase strip, and
// optionally writes the phase-timeline and circle-diagram SVGs.
//
// With -archive DIR the run streams its full trajectory into a new
// shard of the disk-backed archive at DIR (creating it if needed):
// every sample row plus the summary-metric vector, readable back with
// cmd/pomread or internal/archive. Archiving implies streaming mode, so
// it composes with -stream and excludes -svg. Shards are written in the
// POMARC2 format; -archive-codec picks the record codec (delta
// compression by default, raw for byte-for-byte POMARC1 payloads) and
// one directory may mix codecs and generations freely.
//
// With -sweep DIR the process instead joins a fault-tolerant
// distributed sweep as one lease-coordinated worker (internal/dsweep):
// the scenario is swept along -sweep-param over a -sweep-points grid,
// every point's trajectory lands in the shared archive at DIR, and any
// number of pomsim processes pointed at the same DIR divide the grid —
// a worker that dies mid-range is re-leased after -lease-ttl. Merge
// and verify the result with cmd/pomread.
//
// Examples:
//
//	pomsim -n 40 -potential tanh -delay-rank 5
//	pomsim -n 40 -potential desync -sigma 1.5 -offsets=-1,1 -svg out
//	pomsim -n 40 -potential desync -sigma 1.5 -archive runs/desync
//	pomsim -save-config fig2b.json -potential desync -sigma 1.5
//	pomsim -config fig2b.json
//	pomsim -potential desync -sweep runs/scan -sweep-points 64 -sweep-param sigma -sweep-from 0.5 -sweep-to 3
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/archive"
	"repro/internal/continuum"
	"repro/internal/core"
	"repro/internal/kuramoto"
	"repro/internal/potential"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pomsim: ")

	var (
		n         = flag.Int("n", 40, "number of oscillators (MPI processes)")
		potName   = flag.String("potential", "tanh", "interaction potential: tanh | desync | kuramoto")
		sigma     = flag.Float64("sigma", 1.5, "interaction horizon σ of the desync potential")
		offsets   = flag.String("offsets", "-1,1", "comma-separated communication stencil offsets")
		periodic  = flag.Bool("periodic", false, "wrap the stencil into a ring")
		tComp     = flag.Float64("tcomp", 0.8, "computation phase duration")
		tComm     = flag.Float64("tcomm", 0.2, "communication phase duration")
		coupling  = flag.Float64("coupling", 0, "coupling override v_p (0 = βκ/period)")
		rendez    = flag.Bool("rendezvous", false, "rendezvous protocol (β=2) instead of eager (β=1)")
		grouped   = flag.Bool("grouped-waitall", false, "κ = max|d| (grouped MPI_Waitall) instead of Σ|d|")
		delayRank = flag.Int("delay-rank", -1, "rank receiving a one-off delay (-1 = none)")
		delayAt   = flag.Float64("delay-at", 10, "delay start time")
		delayLen  = flag.Float64("delay-len", 2, "delay duration")
		jitter    = flag.Float64("jitter", 0, "Gaussian period noise σ (0 = silent)")
		commLag   = flag.Float64("comm-lag", 0, "constant interaction delay τ")
		tEnd      = flag.Float64("t", 150, "integration end time")
		samples   = flag.Int("samples", 601, "output samples")
		desyncIC  = flag.Bool("desync-init", false, "start in the developed wavefront state")
		seed      = flag.Uint64("seed", 1, "noise / perturbation seed")
		svgDir    = flag.String("svg", "", "directory to write SVG plots into (empty = none)")
		stream    = flag.Bool("stream", false, "stream samples through online accumulators instead of materializing the trajectory (constant memory; no phase strip / SVGs)")
		archDir   = flag.String("archive", "", "archive the run (all sample rows + summary metrics) into a new shard of this directory; implies -stream")
		archCodec = flag.String("archive-codec", "delta", "record codec for archived shards: delta (XOR-delta compressed) | raw (POMARC1 payload bits)")
		quiet     = flag.Bool("quiet", false, "suppress the ASCII phase strip")
		cfgPath   = flag.String("config", "", "load a scenario JSON (replaces the model flags)")
		savePath  = flag.String("save-config", "", "write the effective scenario JSON and exit")
		listFams  = flag.Bool("list-families", false, "list the registered scenario families and exit")

		sweepDir     = flag.String("sweep", "", "join a fault-tolerant distributed sweep archiving into this shared directory (this process becomes one lease-coordinated worker)")
		sweepPoints  = flag.Int("sweep-points", 0, "sweep grid size (required with -sweep)")
		sweepParam   = flag.String("sweep-param", "sigma", "swept parameter: sigma | seed")
		sweepFrom    = flag.Float64("sweep-from", 0.5, "first grid value (seed sweeps: a non-negative integer to count up from)")
		sweepTo      = flag.Float64("sweep-to", 3.0, "last grid value (sigma sweeps only)")
		rangeSize    = flag.Int("range-size", 0, "points per lease range (0 = default)")
		leaseTTL     = flag.Duration("lease-ttl", 0, "lease expiry; a worker silent this long forfeits its range (0 = default)")
		rangeWorkers = flag.Int("range-workers", 0, "point goroutines per leased range (0 = 1)")
		workerID     = flag.String("worker-id", "", "unique worker name in lease files (empty = host-pid)")
		coordinate   = flag.Bool("coordinate", false, "with -sweep: publish/validate the sweep plan and exit without claiming work")
	)
	flag.Parse()

	codec, err := archive.ParseCodec(*archCodec)
	if err != nil {
		log.Fatal(err)
	}
	shardCodec = codec

	if *listFams {
		for _, f := range scenario.Families() {
			fmt.Println(f)
		}
		return
	}

	var spec *scenario.Spec
	if *cfgPath != "" {
		loaded, err := scenario.LoadFile(*cfgPath)
		if err != nil {
			log.Fatal(err)
		}
		spec = loaded
	} else {
		offs, err := parseOffsets(*offsets)
		if err != nil {
			log.Fatal(err)
		}
		spec = &scenario.Spec{
			Name:             "pomsim",
			N:                *n,
			TComp:            *tComp,
			TComm:            *tComm,
			Potential:        scenario.PotentialSpec{Kind: *potName, Sigma: *sigma},
			Offsets:          offs,
			Periodic:         *periodic,
			Rendezvous:       *rendez,
			GroupedWaitall:   *grouped,
			CouplingOverride: *coupling,
			CommLag:          *commLag,
			TEnd:             *tEnd,
			Samples:          *samples,
			PerturbSeed:      *seed,
		}
		if *potName == "tanh" || *potName == "kuramoto" {
			spec.Potential.Sigma = 0
		}
		if *delayRank >= 0 {
			spec.Delays = []scenario.DelaySpec{{
				Rank: *delayRank, Start: *delayAt, Duration: *delayLen,
			}}
		}
		if *jitter > 0 {
			spec.Jitter = &scenario.JitterSpec{Dist: "gaussian", Amp: *jitter, Seed: *seed}
		}
		switch {
		case *desyncIC:
			spec.Init = "desync"
		case *potName == "desync":
			spec.Init = "random"
			spec.PerturbAmp = 0.02
		}
	}

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := spec.Save(f); err != nil {
			_ = f.Close()
			log.Fatal(err)
		}
		// A buffered write error can surface at Close; "written" must
		// not be reported until the file is really closed clean.
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("scenario written to %s\n", *savePath)
		return
	}

	// Distributed worker mode: sweep the scenario along one parameter
	// into a shared lease-coordinated archive (internal/dsweep). Works
	// for every family — each point builds through the unified runtime.
	if *sweepDir != "" {
		if *svgDir != "" {
			log.Fatal("-svg is incompatible with -sweep (archive runs stream)")
		}
		runDistributed(spec, sweepOpts{
			dir:          *sweepDir,
			points:       *sweepPoints,
			param:        *sweepParam,
			from:         *sweepFrom,
			to:           *sweepTo,
			rangeSize:    *rangeSize,
			ttl:          *leaseTTL,
			rangeWorkers: *rangeWorkers,
			workerID:     *workerID,
			coordinate:   *coordinate,
		})
		return
	}

	// Non-POM families (a -config scenario with "family": "kuramoto" or
	// "continuum") run through the unified sim runtime: streamed
	// accumulators, optional archiving — the same stack, any model.
	if fam := spec.Family; fam != "" && fam != "pom" {
		if *svgDir != "" {
			log.Fatalf("-svg is POM-only; family %q runs in streaming mode", fam)
		}
		reportFamily(spec, *archDir)
		return
	}

	cfg, runEnd, runSamples, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}
	m, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *stream || *archDir != "" {
		if *svgDir != "" {
			log.Fatal("-svg needs the materialized trajectory; drop -stream/-archive")
		}
		reportStream(spec, m, runEnd, runSamples, *archDir)
		return
	}
	res, err := m.Run(runEnd, runSamples)
	if err != nil {
		log.Fatal(err)
	}
	report(spec, m, res, *svgDir, *quiet)
}

// shardCodec is the record codec of every shard this invocation
// writes, set once in main from -archive-codec.
var shardCodec archive.Codec

// openArchiveRecord opens a new shard of the archive at archDir and
// begins its single record with the given parameter vector, using the
// shard id as the point index so successive pomsim invocations
// accumulate in one directory. Any failure is fatal (CLI context).
func openArchiveRecord(archDir string, params []float64) (*archive.Writer, *archive.RecordWriter) {
	shard, err := archive.NextShard(archDir)
	if err != nil {
		log.Fatal(err)
	}
	aw, err := archive.CreateWith(archDir, shard, shardCodec)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := aw.Begin(uint64(shard), params)
	if err != nil {
		log.Fatal(err)
	}
	return aw, rec
}

// sealArchiveRecord finishes the record with the summary-metric vector
// (core.Summary.Vector layout) and seals the shard.
func sealArchiveRecord(aw *archive.Writer, rec *archive.RecordWriter, metrics []float64, nSamples int) {
	if err := rec.Finish(metrics, nil); err != nil {
		log.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archived %d sample rows to %s (point %d)\n", nSamples, aw.Path(), rec.Index())
}

// reportFamily runs a non-POM scenario through the unified runtime: the
// spec builds into a sim.System via the family registry, the sample rows
// stream through the shared accumulator set, and — with a non-empty
// archDir — into a new shard of the disk-backed archive, exactly like a
// POM streaming run. Only O(N) accumulator state is ever retained.
func reportFamily(spec *scenario.Spec, archDir string) {
	sys, tEnd, nSamples, err := spec.BuildSystem()
	if err != nil {
		log.Fatal(err)
	}

	var aw *archive.Writer
	var rec *archive.RecordWriter
	var extra []sim.Sink
	if archDir != "" {
		// The params vector carries the run controls plus the family's
		// physical parameters, so archived trajectories can be tied back
		// to the configuration that produced them (the POM path archives
		// [N, TEnd, nSamples, Sigma] the same way).
		params := []float64{float64(sys.Dim()), tEnd, float64(nSamples)}
		switch spec.Family {
		case "kuramoto":
			k := spec.Kuramoto
			params = append(params, k.K, k.FreqMean, k.FreqStd, float64(k.Seed))
		case "continuum":
			c := spec.Continuum
			params = append(params, c.K, c.A, c.Potential.Sigma)
		case "torus2d":
			t := spec.Torus2D
			params = append(params, float64(t.NX), float64(t.NY), float64(t.CouplingRadius()), t.Potential.Sigma)
		case "linstab":
			l := spec.Linstab
			scanKind := 0.0 // 0 = gap scan, 1 = coupling scan
			if l.Scan == "coupling" {
				scanKind = 1
			}
			params = append(params, l.From, l.To, float64(l.ScanPoints()),
				scanKind, l.Coupling(), l.Gap, l.Potential.Sigma)
		case "cluster":
			c := spec.Cluster
			params = append(params, float64(c.N), float64(c.Iters), c.MessageBytes())
		}
		aw, rec = openArchiveRecord(archDir, params)
		extra = append(extra, rec)
	}

	// Per-family streaming sinks ride the same single pass: the slip
	// counter and front tracker see exactly the rows the accumulators
	// and the archive record see.
	famSinks, printFamily := familySinks(spec)
	extra = append(extra, famSinks...)

	sum, err := sim.RunSummaryTo(sys, tEnd, nSamples, 0.1, 0.15, extra...)
	if err != nil {
		log.Fatal(err)
	}
	if rec != nil {
		sealArchiveRecord(aw, rec, sum.Vector(), nSamples)
	}

	fmt.Printf("%s run (unified runtime, streaming): %s  dim=%d t_end=%g samples=%d\n",
		spec.Family, spec.Name, sys.Dim(), tEnd, nSamples)
	fmt.Printf("solver: %s\n", sum.Stats)
	fmt.Printf("asymptotic spread: %.4f rad   max spread: %.4f rad\n",
		sum.AsymptoticSpread, sum.MaxSpread)
	if spec.Family == "cluster" {
		fmt.Printf("iteration skew (spread/2π): asymptotic %.3f   max %.3f iterations\n",
			sum.AsymptoticSpread/(2*math.Pi), sum.MaxSpread/(2*math.Pi))
	}
	fmt.Printf("order parameter: final %.4f   min %.4f\n", sum.FinalOrder, sum.MinOrder)
	if sum.Resynced {
		fmt.Printf("resynchronized at t = %.2f\n", sum.ResyncTime)
	} else {
		fmt.Println("no resynchronization (broken-symmetry or incoherent state)")
		fmt.Printf("mean |adjacent gap| = %.4f\n", sum.MeanAbsGap)
	}
	printFamily()
}

// familySinks returns the family-specific streaming sinks of a spec plus
// a closure printing their findings after the run: the Kuramoto slip
// counter, the continuum front tracker, and the linstab scan-endpoint
// summary. Families without a dedicated sink get a no-op. (Validation
// guarantees the section matching Family is the only one set.)
func familySinks(spec *scenario.Spec) ([]sim.Sink, func()) {
	switch spec.Family {
	case "kuramoto":
		slips := &kuramoto.SlipCounter{}
		return []sim.Sink{slips}, func() {
			fmt.Printf("phase slips: %d   drifting oscillators: %d of %d\n",
				slips.Slips(), slips.Drifting(0.05), spec.Kuramoto.N)
		}
	case "continuum":
		c := spec.Continuum
		tracker := &continuum.FrontTracker{
			Grid: continuum.Grid{M: c.M, A: c.A, Periodic: c.Periodic},
		}
		return []sim.Sink{tracker}, func() {
			fr, err := tracker.Finish()
			if err != nil {
				fmt.Println("continuum front: not detected")
				return
			}
			fmt.Printf("continuum front: velocity %+.4f x/time (R²=%.2f, detected in %d samples)\n",
				fr.Velocity, fr.R2, fr.Detected)
		}
	case "linstab":
		var last []float64
		sink := sim.SinkFunc(func(_ float64, y []float64) {
			last = append(last[:0], y...)
		})
		return []sim.Sink{sink}, func() {
			if len(last) == 0 {
				return
			}
			if spec.Linstab.FullSpectrum {
				fmt.Printf("spectrum at scan end: λ_min %.4g … λ_max %.4g (%d eigenvalues)\n",
					last[0], last[len(last)-1], len(last))
				return
			}
			fmt.Printf("at scan end (u=%g): λ_max %.4g   unstable modes %d   zero modes %d\n",
				spec.Linstab.To, last[0],
				int(math.Round(last[1])), int(math.Round(last[2])))
		}
	}
	return nil, func() {}
}

// reportStream integrates in streaming mode: the sample rows flow through
// the online accumulator sinks and only O(N) summary state is ever
// retained — the memory model of the million-scenario batch sweeps. The
// printed metrics are bit-for-bit the ones report derives from the
// materialized trajectory. With a non-empty archDir the same pass also
// streams every row into a new shard of the disk-backed archive there.
func reportStream(spec *scenario.Spec, m *core.Model, tEnd float64, nSamples int, archDir string) {
	spread := &core.SpreadAccumulator{FinalFraction: 0.15}
	resync := &core.ResyncDetector{Eps: 0.1}
	gaps := &core.GapAccumulator{FinalFraction: 0.15}
	sinks := []core.Sink{spread, resync, gaps}
	waves := make([]*core.WaveDetector, 0, len(spec.Delays))
	for _, d := range spec.Delays {
		det, err := core.NewWaveDetector(m, d.Rank, d.Start, 0.15)
		if err != nil {
			log.Fatal(err)
		}
		waves = append(waves, det)
		sinks = append(sinks, det)
	}

	// Archiving rides the same pass: the record writer is one more sink,
	// so the rows on disk are exactly the rows the accumulators saw. Each
	// pomsim invocation gets its own shard (and uses the shard id as the
	// point index), so successive runs accumulate in one directory.
	var aw *archive.Writer
	var rec *archive.RecordWriter
	order := &core.OrderAccumulator{}
	if archDir != "" {
		aw, rec = openArchiveRecord(archDir, []float64{
			float64(spec.N), spec.TEnd, float64(nSamples), spec.Potential.Sigma,
		})
		// The order accumulator completes the standard Summary metric
		// set, so the archived vector matches the layout sweep-written
		// records use (core.Summary.Vector).
		sinks = append(sinks, order, rec)
	}

	stats, err := m.RunStream(tEnd, nSamples, core.Tee(sinks...))
	if err != nil {
		log.Fatal(err)
	}

	if rec != nil {
		sum := core.Summary{
			FinalSpread:      spread.Final(),
			MaxSpread:        spread.Max(),
			AsymptoticSpread: spread.Asymptotic(),
			FinalOrder:       order.Final(),
			MinOrder:         order.Min(),
			MeanAbsGap:       gaps.MeanAbsGap(),
		}
		if rt, err := resync.ResyncTime(); err == nil {
			sum.Resynced, sum.ResyncTime = true, rt
		}
		sealArchiveRecord(aw, rec, sum.Vector(), nSamples)
	}

	fmt.Printf("POM run (streaming): %s  N=%d potential=%s offsets=%v v_p=%.3g coupling=%.3g\n",
		spec.Name, spec.N, spec.Potential.Kind, spec.Offsets, m.Vp(), m.Coupling())
	fmt.Printf("solver: %s\n", stats)
	fmt.Printf("asymptotic spread: %.4f rad   max spread: %.4f rad\n",
		spread.Asymptotic(), spread.Max())
	if rt, err := resync.ResyncTime(); err == nil {
		fmt.Printf("resynchronized at t = %.2f\n", rt)
	} else {
		fmt.Println("no resynchronization (broken-symmetry state)")
		fmt.Printf("mean |adjacent gap| = %.4f", gaps.MeanAbsGap())
		if spec.Potential.Kind == "desync" {
			fmt.Printf(" (potential stable zero 2σ/3 = %.4f)",
				potential.NewDesync(spec.Potential.Sigma).StableZero())
		}
		fmt.Println()
	}
	for i, det := range waves {
		if wf, err := det.Finish(); err == nil {
			fmt.Printf("idle wave from rank %d: speed %.3f ranks/period (R²=%.2f, reached %d ranks)\n",
				spec.Delays[i].Rank, wf.SpeedRanksPerPeriod, wf.R2, wf.Reached)
		}
	}
}

// report prints the run summary and writes optional SVGs.
func report(spec *scenario.Spec, m *core.Model, res *core.Result, svgDir string, quiet bool) {
	fmt.Printf("POM run: %s  N=%d potential=%s offsets=%v v_p=%.3g coupling=%.3g\n",
		spec.Name, spec.N, spec.Potential.Kind, spec.Offsets, m.Vp(), m.Coupling())
	fmt.Printf("solver: %s\n", res.Stats)
	fmt.Printf("asymptotic spread: %.4f rad   frequency-locked: %v\n",
		res.AsymptoticSpread(0.15), res.FrequencyLocked(0.2, 1e-2))
	if rt, err := res.ResyncTime(0.1); err == nil {
		fmt.Printf("resynchronized at t = %.2f\n", rt)
	} else {
		fmt.Println("no resynchronization (broken-symmetry state)")
		gaps := res.AsymptoticGaps(0.15)
		var s float64
		for _, g := range gaps {
			if g < 0 {
				g = -g
			}
			s += g
		}
		fmt.Printf("mean |adjacent gap| = %.4f", s/float64(len(gaps)))
		if spec.Potential.Kind == "desync" {
			fmt.Printf(" (potential stable zero 2σ/3 = %.4f)",
				potential.NewDesync(spec.Potential.Sigma).StableZero())
		}
		fmt.Println()
	}
	for _, d := range spec.Delays {
		if wf, err := res.MeasureWave(d.Rank, d.Start, 0.15); err == nil {
			fmt.Printf("idle wave from rank %d: speed %.3f ranks/period (R²=%.2f, reached %d ranks)\n",
				d.Rank, wf.SpeedRanksPerPeriod, wf.R2, wf.Reached)
		}
	}

	if !quiet {
		fmt.Println("\nphase strip (rows: time, columns: ranks; digits = lag behind leader):")
		fmt.Print(viz.PhaseStrip(res.NormalizedPhases(), 30))
	}

	if svgDir != "" {
		if err := writeSVGs(svgDir, res, m); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("SVGs written to %s\n", svgDir)
	}
}

// parseOffsets parses "-1,1,-2" into a stencil offset list.
func parseOffsets(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad offset %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// writeSVGs renders the phase-timeline and final circle diagram.
func writeSVGs(dir string, res *core.Result, m *core.Model) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	norm := res.NormalizedPhases()
	plot := viz.LinePlot{
		Title:  "Normalized phases θᵢ − ωt (lagger baseline)",
		XLabel: "time", YLabel: "phase [rad]",
	}
	stride := m.N() / 8
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < m.N(); i += stride {
		ys := make([]float64, len(res.Ts))
		for k := range res.Ts {
			ys[k] = norm[k][i]
		}
		plot.Series = append(plot.Series, viz.Series{
			Name: fmt.Sprintf("rank %d", i), Xs: res.Ts, Ys: ys,
		})
	}
	if err := os.WriteFile(filepath.Join(dir, "phases.svg"), []byte(plot.SVG()), 0o644); err != nil {
		return err
	}

	hm := viz.Heatmap{
		Title:  "Lag behind leader (white low, red high)",
		XLabel: "rank", YLabel: "time →",
		Data: norm,
	}
	if err := os.WriteFile(filepath.Join(dir, "lag_heatmap.svg"), []byte(hm.SVG()), 0o644); err != nil {
		return err
	}

	final := res.FinalPhases()
	freqs := res.FrequencyTimeline()
	var lastFreq []float64
	if len(freqs) > 0 {
		lastFreq = freqs[len(freqs)-1]
	}
	circ := viz.CircleDiagram{
		Title:  "Asymptotic phase configuration",
		Phases: final,
		Freqs:  lastFreq,
	}
	return os.WriteFile(filepath.Join(dir, "circle.svg"), []byte(circ.SVG()), 0o644)
}
