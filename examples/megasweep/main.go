// Megasweep: a 10⁵-point parameter sweep in bounded memory — the
// million-scenario batch workload of the ROADMAP's north star, made
// feasible by the streaming sample-sink subsystem. Every point integrates
// a full oscillator model, but its samples flow through online
// accumulators (core.Model.RunStream) and only an O(N) summary crosses the
// worker boundary (sweep.RunReduce), so the resident heap stays flat no
// matter how many points or samples the sweep covers. A materialized sweep
// of the same size would retain points × samples × N trajectory floats —
// hundreds of gigabytes at this scale.
//
//	go run ./examples/megasweep                 # full 10⁵-point sweep
//	go run ./examples/megasweep -points 2000    # quick look
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/noise"
	"repro/internal/potential"
	"repro/internal/sweep"
	"repro/internal/topology"
)

func main() {
	log.SetFlags(0)
	var (
		points  = flag.Int("points", 100_000, "number of sweep points")
		n       = flag.Int("n", 8, "oscillators per point")
		workers = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		tEnd    = flag.Float64("t", 40, "integration end time per point")
		samples = flag.Int("samples", 401, "samples per point (streamed, never stored)")
	)
	flag.Parse()

	// The 2-D grid covers interaction horizon σ and coupling βκ; point i
	// is derived on the fly so not even the parameter list is materialized.
	const (
		sigmaLo, sigmaHi = 0.6, 2.4
		bkLo, bkHi       = 1.0, 4.0
	)
	side := int(math.Sqrt(float64(*points)))
	if side < 1 {
		side = 1
	}
	type param struct{ Sigma, BK float64 }
	gen := func(i int) param {
		r, c := i/side, i%side
		den := float64(side - 1)
		if den == 0 {
			den = 1
		}
		return param{
			Sigma: sigmaLo + (sigmaHi-sigmaLo)*float64(r%side)/den,
			BK:    bkLo + (bkHi-bkLo)*float64(c)/den,
		}
	}

	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	// The reduction keeps aggregates only: how many points settled into a
	// wavefront, how tightly the settled gaps track the 2σ/3 stable zero,
	// and the peak heap along the way — the bounded-memory evidence.
	var (
		done, resynced int
		gapErrSum      float64
		gapErrMax      float64
		maxHeap        uint64
		//pomvet:allow wallclock operator progress meter: throughput reporting only, never simulation state
		start = time.Now()
	)
	err := sweep.RunReduce(context.Background(), *points, *workers,
		gen,
		func(_ context.Context, p param) (*core.Summary, error) {
			tp, err := topology.NextNeighbor(*n, false)
			if err != nil {
				return nil, err
			}
			m, err := core.New(core.Config{
				N: *n, TComp: 0.8, TComm: 0.2,
				Potential:        potential.NewDesync(p.Sigma),
				Topology:         tp,
				CouplingOverride: p.BK,
				Init:             core.RandomPhases,
				PerturbSeed:      uint64(1 + *n),
				PerturbAmp:       0.02,
				LocalNoise:       noise.Delay{Rank: *n / 3, Start: 5, Duration: 1, Extra: 20},
			})
			if err != nil {
				return nil, err
			}
			return m.RunSummary(*tEnd, *samples, 0.1, 0.15)
		},
		func(i int, p param, s *core.Summary) {
			done++
			if s.Resynced {
				resynced++
			} else {
				relErr := math.Abs(s.MeanAbsGap-2*p.Sigma/3) / (2 * p.Sigma / 3)
				gapErrSum += relErr
				if relErr > gapErrMax {
					gapErrMax = relErr
				}
			}
			if done%10_000 == 0 {
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > maxHeap {
					maxHeap = ms.HeapAlloc
				}
				fmt.Printf("  %7d / %d points  heap %5.1f MiB  %.0f pts/s\n",
					done, *points, float64(ms.HeapAlloc)/(1<<20),
					//pomvet:allow wallclock operator progress meter
					float64(done)/time.Since(start).Seconds())
			}
		})
	if err != nil {
		log.Fatal(err)
	}

	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > maxHeap {
		maxHeap = after.HeapAlloc
	}

	wavefront := done - resynced
	//pomvet:allow wallclock operator progress meter
	elapsed := time.Since(start).Seconds()
	fmt.Printf("\n%d points in %.1fs (%d workers requested)\n",
		done, elapsed, *workers)
	fmt.Printf("  resynchronized: %d   wavefront: %d\n", resynced, wavefront)
	if wavefront > 0 {
		fmt.Printf("  settled gap vs 2σ/3: mean rel. error %.3f, max %.3f\n",
			gapErrSum/float64(wavefront), gapErrMax)
	}
	trajectoryBytes := float64(*points) * float64(*samples) * float64(*n) * 8
	fmt.Printf("  peak heap: %.1f MiB (materialized trajectories would need %.1f GiB)\n",
		float64(maxHeap)/(1<<20), trajectoryBytes/(1<<30))
}
