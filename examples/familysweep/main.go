// Familysweep: every model family, one runtime. The scenario registry
// builds POM, Kuramoto, and continuum specs into sim.Systems, and the
// same streaming / sweep / archive stack runs them all:
//
//  1. a Kuramoto coupling sweep streams through sweep.RunReduce with the
//     shared OrderAccumulator — the classic r∞(K) bifurcation diagram in
//     O(workers) memory,
//
//  2. the two continuum regimes (diffusive tanh vs. anti-diffusive
//     desync) summarize through the identical accumulator set,
//
//  3. the Kuramoto sweep is then archived with sweep.RunArchive — full
//     trajectories on disk, resumable after a crash, exactly like the
//     POM archives of examples/archivesweep.
//
//     go run ./examples/familysweep
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"
	"strings"

	"repro/internal/archive"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/sweep"
)

func main() {
	log.SetFlags(0)

	// --- 1. Kuramoto transition, streamed ------------------------------
	const points = 16
	ks := sweep.Grid1(0.2, 4.0, points)
	rinf := make([]float64, points)
	err := sweep.RunReduce(context.Background(), points, 4,
		func(i int) float64 { return ks[i] },
		func(_ context.Context, k float64) (float64, error) {
			spec := scenario.KuramotoScenario(120, k, 11)
			spec.TEnd, spec.Samples = 40, 201
			sys, tEnd, samples, err := spec.BuildSystem()
			if err != nil {
				return 0, err
			}
			order := &sim.OrderAccumulator{FinalFraction: 0.25}
			if _, err := sim.RunStream(sys, tEnd, samples, order); err != nil {
				return 0, err
			}
			return order.Asymptotic(), nil
		},
		func(i int, _ float64, r float64) { rinf[i] = r })
	if err != nil {
		log.Fatal(err)
	}
	kc := 1.0 * math.Sqrt(8/math.Pi) // σ = 1
	fmt.Printf("Kuramoto transition (N=120, K_c ≈ %.2f):\n", kc)
	for i, k := range ks {
		bar := strings.Repeat("#", int(40*rinf[i]))
		fmt.Printf("  K=%4.2f  r∞=%.3f %s\n", k, rinf[i], bar)
	}

	// --- 2. continuum regimes, same accumulators -----------------------
	fmt.Println("\ncontinuum limit (M=96 field, lag pulse):")
	for _, c := range []struct {
		label string
		pot   scenario.PotentialSpec
	}{
		{"tanh (diffusive)", scenario.PotentialSpec{Kind: "tanh"}},
		{"desync σ=1.5 (anti-diffusive)", scenario.PotentialSpec{Kind: "desync", Sigma: 1.5}},
	} {
		spec := scenario.ContinuumScenario(96, 2, c.pot)
		spec.TEnd, spec.Samples = 150, 301
		sys, tEnd, samples, err := spec.BuildSystem()
		if err != nil {
			log.Fatal(err)
		}
		sum, err := sim.RunSummary(sys, tEnd, samples, 0.1, 0.15)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-30s spread %6.3f → %6.3f rad, mean |gradient| %.3f\n",
			c.label, sum.MaxSpread, sum.AsymptoticSpread, sum.MeanAbsGap)
	}

	// --- 3. archive the Kuramoto sweep ---------------------------------
	dir, err := os.MkdirTemp("", "familysweep-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	stats, err := sweep.RunArchive(context.Background(), dir, points, 4,
		func(i int) []float64 { return []float64{ks[i]} },
		func(_ context.Context, i int, params []float64, rec *archive.RecordWriter) error {
			spec := scenario.KuramotoScenario(120, params[0], 11)
			spec.TEnd, spec.Samples = 40, 201
			sys, tEnd, samples, err := spec.BuildSystem()
			if err != nil {
				return err
			}
			sum, err := sim.RunSummaryTo(sys, tEnd, samples, 0.1, 0.15, rec)
			if err != nil {
				return err
			}
			return rec.Finish(sum.Vector(), nil)
		})
	if err != nil {
		log.Fatal(err)
	}
	a, err := archive.OpenDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = a.Close() }() // read-only close
	var bytesTotal int64
	for _, s := range a.Shards() {
		bytesTotal += s.Size()
	}
	fmt.Printf("\narchived the Kuramoto sweep: %d points in %d shards, %d bytes — "+
		"full trajectories, resumable like any POM archive\n",
		stats.Archived, stats.Shards, bytesTotal)
	rec, err := a.Read(uint64(points - 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back point %d: K=%.2f, %d rows × %d oscillators, final r=%.3f\n",
		rec.Index, rec.Params[0], rec.NSamples(), rec.Width, rec.Metrics[3])
}
