// Archivesweep: a resumable, disk-backed parameter sweep — the
// archival counterpart of examples/megasweep. Where megasweep reduces
// every point to an O(N) summary and discards the trajectory, this
// sweep persists each point's full output (parameter vector, every
// sample row, and the summary metrics) into a sharded archive, the way
// the paper's workflow keeps ITAC trace files next to the results for
// post-hoc analysis.
//
// The demo exercises the whole crash story end to end:
//
//  1. write    — an archive sweep is interrupted mid-run (simulating a
//     crash or a preempted batch job),
//  2. resume   — a second sweep.RunArchive over the same directory
//     skips every archived point and runs only the missing ones,
//  3. read back — the resumed archive is compared record-for-record,
//     byte-for-byte, against an uninterrupted reference sweep.
//
// Because records depend only on the point index and parameters — not
// on worker count, shard layout, or interruption history — the two
// archives are bitwise identical, which is what makes archives safe to
// resume on different machines or worker counts.
//
//	go run ./examples/archivesweep
//	go run ./examples/archivesweep -points 128 -workers 8
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/potential"
	"repro/internal/sweep"
	"repro/internal/topology"
)

func main() {
	log.SetFlags(0)
	var (
		points    = flag.Int("points", 48, "number of sweep points")
		n         = flag.Int("n", 8, "oscillators per point")
		workers   = flag.Int("workers", 4, "worker goroutines")
		tEnd      = flag.Float64("t", 20, "integration end time per point")
		samples   = flag.Int("samples", 101, "archived sample rows per point")
		interrupt = flag.Int("interrupt", 12, "simulate a crash after this many archived points")
		dir       = flag.String("dir", "", "archive directory (empty = temp dir, removed afterwards)")
	)
	flag.Parse()

	root := *dir
	if root == "" {
		tmp, err := os.MkdirTemp("", "archivesweep-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}
	mainDir := filepath.Join(root, "sweep")
	refDir := filepath.Join(root, "reference")

	// Each point integrates a desynchronizing POM model at one σ of the
	// interaction-horizon grid; the record keeps the full trajectory plus
	// the standard summary vector.
	gen := func(i int) []float64 {
		return []float64{0.6 + 1.8*float64(i)/float64(*points)}
	}
	point := func(ctx context.Context, i int, params []float64, rec *archive.RecordWriter) error {
		tp, err := topology.NextNeighbor(*n, false)
		if err != nil {
			return err
		}
		m, err := core.New(core.Config{
			N: *n, TComp: 0.8, TComm: 0.2,
			Potential:   potential.NewDesync(params[0]),
			Topology:    tp,
			Init:        core.RandomPhases,
			PerturbSeed: uint64(i + 1),
			PerturbAmp:  0.02,
		})
		if err != nil {
			return err
		}
		// RunSummaryTo tees the record writer into the accumulator pass,
		// so the rows land on disk while the summary forms — nothing is
		// materialized in memory.
		sum, err := m.RunSummaryTo(*tEnd, *samples, 0.1, 0.15, rec)
		if err != nil {
			return err
		}
		return rec.Finish(sum.Vector(), nil)
	}

	// --- 1. write, interrupted -------------------------------------------
	ctx, cancel := context.WithCancel(context.Background())
	var archived atomic.Int64
	countingPoint := func(ctx context.Context, i int, params []float64, rec *archive.RecordWriter) error {
		if err := point(ctx, i, params, rec); err != nil {
			return err
		}
		if int(archived.Add(1)) == *interrupt {
			cancel() // the "crash"
		}
		return nil
	}
	_, err := sweep.RunArchive(ctx, mainDir, *points, *workers, gen, countingPoint)
	cancel()
	if err == nil {
		log.Fatal("the interrupted sweep unexpectedly ran to completion; raise -points or lower -interrupt")
	}
	if !errors.Is(err, context.Canceled) {
		log.Fatal(err)
	}
	a, err := archive.OpenDir(mainDir)
	if err != nil {
		log.Fatal(err)
	}
	already := a.Len()
	_ = a.Close() // read-only close; the count is already in hand
	fmt.Printf("interrupted: %d of %d points archived before the crash\n", already, *points)

	// --- 2. resume -------------------------------------------------------
	stats, err := sweep.RunArchive(context.Background(), mainDir, *points, *workers, gen, point)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed:     %d points skipped (already on disk), %d archived in %d new shards\n",
		stats.Skipped, stats.Archived, stats.Shards)

	// --- 3. read back and compare with an uninterrupted run --------------
	if _, err := sweep.RunArchive(context.Background(), refDir, *points, *workers, gen, point); err != nil {
		log.Fatal(err)
	}
	got, err := archive.OpenDir(mainDir)
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = got.Close() }() // read-only close
	want, err := archive.OpenDir(refDir)
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = want.Close() }() // read-only close
	if got.Len() != *points || want.Len() != *points {
		log.Fatalf("archives hold %d / %d points, want %d", got.Len(), want.Len(), *points)
	}
	for i := 0; i < *points; i++ {
		pg, err1 := got.ReadRaw(uint64(i))
		pw, err2 := want.ReadRaw(uint64(i))
		if err1 != nil || err2 != nil {
			log.Fatal(err1, err2)
		}
		if !bytes.Equal(pg, pw) {
			log.Fatalf("record %d differs between resumed and uninterrupted archives", i)
		}
	}
	fmt.Printf("read back:   %d records, resumed archive bitwise-identical to the uninterrupted run\n", *points)

	// A taste of post-hoc analysis straight off the disk.
	var bytesTotal int64
	for _, s := range got.Shards() {
		bytesTotal += s.Size()
	}
	rec, err := got.Read(uint64(*points / 2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archive:     %d shards, %d bytes (%.0f B/point)\n",
		len(got.Shards()), bytesTotal, float64(bytesTotal)/float64(*points))
	fmt.Printf("sample read: point %d (σ=%.3f) has %d rows × %d ranks, mean |gap| %.4f (2σ/3 = %.4f)\n",
		rec.Index, rec.Params[0], rec.NSamples(), rec.Width,
		rec.Metrics[7], 2*rec.Params[0]/3)
}
