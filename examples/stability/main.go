// Stability: answer the paper's §6 open questions within the model —
// (1) is the symmetry-breaking transition connected to a Goldstone mode?
// (2) does the model have a useful continuum limit?
//
// Part 1 computes the spectrum of the POM linearization around the
// lockstep and wavefront states for both potentials; part 2 integrates
// the continuum field and shows diffusion (resync) vs. anti-diffusion
// with gradient selection (wavefront).
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/continuum"
	"repro/internal/linstab"
	"repro/internal/potential"
	"repro/internal/topology"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)
	const n = 16
	const k = 2.0
	sigma := 1.5
	desync := potential.NewDesync(sigma)

	fmt.Println("Part 1 — linear stability of the POM steady states")
	fmt.Println()
	ring, err := topology.NextNeighbor(n, true)
	if err != nil {
		log.Fatal(err)
	}
	chain, err := topology.NextNeighbor(n, false)
	if err != nil {
		log.Fatal(err)
	}
	rows := [][]string{}
	report := func(label string, tp *topology.Topology, pot potential.Potential, state []float64) {
		cl, err := linstab.Classify(tp, pot, state, k)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "UNSTABLE"
		if cl.Stable {
			verdict = "stable"
		}
		rows = append(rows, []string{
			label,
			fmt.Sprintf("%d", cl.Unstable),
			fmt.Sprintf("%d", cl.ZeroModes),
			fmt.Sprintf("%.4f", cl.MaxEigenvalue),
			verdict,
		})
	}
	report("lockstep + tanh", ring, potential.Tanh{}, linstab.LockstepState(n))
	report("lockstep + desync", ring, desync, linstab.LockstepState(n))
	report("wavefront(2σ/3) + desync", chain, desync,
		linstab.WavefrontState(n, desync.StableZero()))
	fmt.Print(viz.Table(
		[]string{"state", "unstable modes", "zero modes", "max λ", "verdict"}, rows))
	fmt.Println()
	fmt.Println("The wavefront is linearly stable with exactly one zero eigenvalue —")
	fmt.Println("the Goldstone mode of the broken phase symmetry (§6, answered).")
	fmt.Println()

	fmt.Println("Part 2 — continuum limit")
	fmt.Println()
	g := continuum.Grid{M: 64, A: 1, Periodic: false}

	// Synchronizing potential: diffusion flattens a lag bump.
	sync := continuum.Field{Grid: g, Potential: potential.Tanh{}, K: k, Linear: true}
	theta0 := make([]float64, g.M)
	for i := range theta0 {
		x := g.X(i) - g.X(g.M/2)
		theta0[i] = -3 * math.Exp(-x*x/8)
	}
	resS, err := sync.Solve(theta0, 60, 4)
	if err != nil {
		log.Fatal(err)
	}
	spread := resS.SpreadTimeline()
	fmt.Printf("tanh field (D = %.2f): lag spread %.2f → %.2f over 60 periods (diffusive resync)\n",
		sync.Diffusivity(), spread[0], spread[len(spread)-1])

	// Desynchronizing potential: anti-diffusion selects the 2σ/3 gap.
	front := continuum.Field{Grid: g, Potential: desync, K: k}
	seed := make([]float64, g.M)
	for i := range seed {
		seed[i] = 0.01 * math.Sin(7*float64(i))
	}
	resF, err := front.Solve(seed, 400, 3)
	if err != nil {
		log.Fatal(err)
	}
	gaps := resF.GradientField(len(resF.Ts) - 1)
	var mean float64
	for _, gp := range gaps {
		mean += math.Abs(gp)
	}
	mean /= float64(len(gaps))
	fmt.Printf("desync field (D = %.2f): selected |gap| = %.4f (stable zero 2σ/3 = %.4f)\n",
		front.Diffusivity(), mean, desync.StableZero())
	fmt.Println("\nThe continuum limit reproduces both regimes: D > 0 diffuses idle")
	fmt.Println("waves away, D < 0 is the desynchronization instability saturated at")
	fmt.Println("the potential's stable zero — the co-design handle §6 asks for.")
}
