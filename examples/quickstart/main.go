// Quickstart: build a 24-process oscillator model, disturb one process,
// and watch the idle wave ripple through and the system resynchronize —
// the core phenomenon of the paper in ~30 lines of API use.
//
// Where to go next: examples/README.md indexes every example (what it
// demonstrates, expected runtime), and SCENARIOS.md documents the JSON
// configs under examples/scenarios/ that drive the same experiments
// declaratively through cmd/pomsim.
package main

import (
	"fmt"
	"log"

	"repro/internal/viz"
	"repro/pom"
)

func main() {
	log.SetFlags(0)

	// A resource-scalable program: 24 ranks, next-neighbor communication,
	// tanh potential (Eq. 3), one compute-communicate cycle per time unit.
	cfg := pom.Scalable(24)

	// Disturb rank 5 at t = 10 for 2 periods — the paper's one-off delay.
	cfg.LocalNoise = pom.OneOffDelay(5, 10, 2, 1)

	model, err := pom.NewModel(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := model.Run(100, 501)
	if err != nil {
		log.Fatal(err)
	}

	wave, err := res.MeasureWave(5, 10, 0.15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("idle wave: %.2f ranks/period (R² = %.2f), reached %d of 24 ranks\n",
		wave.SpeedRanksPerPeriod, wave.R2, wave.Reached)

	if t, err := res.ResyncTime(0.1); err == nil {
		fmt.Printf("system resynchronized at t = %.1f periods\n", t)
	} else {
		fmt.Println("system did not resynchronize:", err)
	}

	fmt.Println("\nphase strip (one row per sampled time, digits = lag):")
	fmt.Print(viz.PhaseStrip(res.NormalizedPhases(), 24))
}
