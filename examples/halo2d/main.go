// Halo2d: the paper's phenomenology on a realistic domain-decomposition
// workload — a 2-D periodic halo exchange (4-point stencil torus), the
// communication pattern of stencil solvers. The degree-4 periodic
// topology is much *stiffer* than the 1-D chain: in the traces it
// suppresses the memory-bound desynchronization almost entirely (the
// §5.2.2 stiffness effect taken to its limit), while the oscillator model
// with the desync potential still settles into a zigzag broken-symmetry
// state with gaps at the potential's stable zero.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/noise"
	"repro/internal/potential"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)
	const nx, ny = 6, 5
	n := nx * ny

	tp, err := topology.Torus2D(nx, ny)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2-D halo exchange on a %d×%d torus (%d ranks, degree 4)\n\n", nx, ny, n)

	// --- MPI side: both kernels ----------------------------------------
	for _, k := range []kernels.Kernel{kernels.Pisolver(), kernels.STREAM()} {
		progs, err := cluster.BulkSynchronous(tp, k.Workload(), 1024, 250)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := cluster.NewSim(cluster.Meggie((n+9)/10), progs, cluster.Options{
			Delays: []cluster.DelayInjection{{Rank: n / 2, Iter: 40, Extra: 10 * k.CoreSeconds}},
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		tr := res.Trace
		dm, err := tr.MeasureDesync(res.Makespan*0.75, res.Makespan*0.97, 40)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s makespan %.3fs  socket0 %.1f GB/s  asymptotic skew spread %.2f iterations\n",
			k.Name, res.Makespan, res.AggregateBandwidth(0)/1e9, dm.Spread)
	}

	// --- Model side: desynchronization on the torus ---------------------
	sigma := 1.2
	cfg := core.Config{
		N:           n,
		TComp:       0.8,
		TComm:       0.2,
		Potential:   potential.NewDesync(sigma),
		Topology:    tp,
		Init:        core.RandomPhases,
		PerturbSeed: 2,
		PerturbAmp:  0.02,
		LocalNoise:  noise.Delay{Rank: n / 2, Start: 20, Duration: 2, Extra: 100},
	}
	m, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.Run(300, 601)
	if err != nil {
		log.Fatal(err)
	}
	r, _ := stats.OrderParameter(res.FinalPhases())
	fmt.Printf("\nmodel (desync σ=%.1f): asymptotic order parameter r = %.3f, spread %.2f rad, freq-locked %v\n",
		sigma, r, res.AsymptoticSpread(0.1), res.FrequencyLocked(0.2, 1e-2))

	// Gap statistics along the x-direction of the torus.
	final := res.FinalPhases()
	var gapsX []float64
	for y := 0; y < ny; y++ {
		for x := 0; x < nx-1; x++ {
			gapsX = append(gapsX, final[y*nx+x+1]-final[y*nx+x])
		}
	}
	sum, _ := stats.Summarize(gapsX)
	fmt.Printf("x-direction gaps: median |Δθ| = %.3f (potential stable zero 2σ/3 = %.3f)\n",
		absMedian(gapsX), 2*sigma/3)
	fmt.Printf("gap distribution: min %.3f  max %.3f  std %.3f\n", sum.Min, sum.Max, sum.Std)
	fmt.Println("\nNote the contrast: the stiff 2-D torus keeps the *traces* in near")
	fmt.Println("lockstep (skew ≈ 0 even for STREAM), while the 1-D chains of Fig. 2")
	fmt.Println("desynchronize — communication stiffness suppresses the wavefront,")
	fmt.Println("exactly the §5.2.2 trend.")
	fmt.Println("\nfinal torus phases (sparkline per row):")
	for y := 0; y < ny; y++ {
		fmt.Printf("  row %d: %s\n", y, viz.Sparkline(final[y*nx:(y+1)*nx]))
	}
}

// absMedian returns the median of |xs|.
func absMedian(xs []float64) float64 {
	a := make([]float64, len(xs))
	for i, x := range xs {
		if x < 0 {
			x = -x
		}
		a[i] = x
	}
	s, err := stats.Summarize(a)
	if err != nil {
		return 0
	}
	return s.Median
}
