// Kuramotocompare: demonstrate why the plain Kuramoto model is unsuitable
// for parallel programs (paper §2.2.2) by contrasting it with the POM on
// the same three axes: connectivity, phase slips, and desynchronization.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)

	res, err := experiments.KuramotoBaseline([]float64{0.2, 0.8, 1.6, 2.4, 4.0})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("1. Kuramoto synchronization transition (all-to-all, N=150):")
	var rows [][]string
	for _, p := range res.Transition {
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", p.K), fmt.Sprintf("%.3f", p.R),
		})
	}
	fmt.Print(viz.Table([]string{"K", "r∞"}, rows))
	fmt.Printf("mean-field critical coupling K_c = %.2f\n\n", res.CriticalCoupling)

	fmt.Println("2. Phase slips: at K = 0.05 << K_c the sine coupling lets")
	fmt.Printf("   oscillators slip full 2π turns against the mean phase: %d slips\n",
		res.WeakCouplingSlips)
	fmt.Println("   in 100 time units. Parallel processes cannot do this — a compute")
	fmt.Println("   phase cannot start before its messages arrive — which is why the")
	fmt.Println("   POM potentials are non-periodic.")
	fmt.Println()

	fmt.Println("3. All-to-all connectivity acts like a synchronizing barrier:")
	fmt.Printf("   a one-off delay reaches every rank within %.2f periods under\n",
		res.AllToAllArrivalSpread)
	fmt.Printf("   all-to-all coupling, but needs %.1f periods to spread across a\n",
		res.NeighborArrivalSpread)
	fmt.Println("   ±1 ring — real MPI programs live in the second regime, so the")
	fmt.Println("   topology matrix T_ij is essential.")
}
