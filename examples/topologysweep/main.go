// Topologysweep: explore how the communication stencil and the coupling
// strength βκ set the idle-wave propagation speed (paper §5.1.1) — the
// kind of parameter-space exploration the MATLAB GUI is built for, as a
// scriptable program.
package main

import (
	"fmt"
	"log"

	"repro/internal/viz"
	"repro/pom"
)

func main() {
	log.SetFlags(0)
	const n = 32

	fmt.Println("Idle-wave speed vs coupling (tanh potential, ±1 ring):")
	var rows [][]string
	for _, bk := range []float64{0.5, 1, 2, 4, 8} {
		tp, err := pom.NextNeighbor(n, true)
		if err != nil {
			log.Fatal(err)
		}
		cfg := pom.Scalable(n)
		cfg.Topology = tp
		cfg.CouplingOverride = bk // v_p = βκ / period with period 1
		cfg.LocalNoise = pom.OneOffDelay(n/2, 10, 2, 1)
		model, err := pom.NewModel(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := model.Run(120, 1201)
		if err != nil {
			log.Fatal(err)
		}
		wf, err := res.MeasureWave(n/2, 10, 0.15)
		if err != nil {
			rows = append(rows, [][]string{{fmt.Sprintf("%g", bk), "no wave", "-"}}...)
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("%g", bk),
			fmt.Sprintf("%.3f", wf.SpeedRanksPerPeriod),
			fmt.Sprintf("%.2f", wf.R2),
		})
	}
	fmt.Print(viz.Table([]string{"βκ", "speed [ranks/period]", "R²"}, rows))

	fmt.Println("\nStencil comparison at fixed protocol (eager, separate waits):")
	rows = rows[:0]
	for _, tc := range []struct {
		label   string
		offsets []int
	}{
		{"d=±1", []int{-1, 1}},
		{"d=±1,−2", []int{-2, -1, 1}},
		{"d=±1,±2", []int{-2, -1, 1, 2}},
	} {
		tp, err := pom.Stencil(n, tc.offsets, true)
		if err != nil {
			log.Fatal(err)
		}
		cfg := pom.Scalable(n)
		cfg.Topology = tp
		cfg.LocalNoise = pom.OneOffDelay(n/2, 10, 2, 1)
		model, err := pom.NewModel(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := model.Run(120, 1201)
		if err != nil {
			log.Fatal(err)
		}
		wf, err := res.MeasureWave(n/2, 10, 0.15)
		if err != nil {
			log.Fatal(err)
		}
		// κ = Σ|d| under separate waits; βκ = coupling with β = 1.
		rows = append(rows, []string{
			tc.label,
			fmt.Sprintf("%.0f", model.Vp()),
			fmt.Sprintf("%.3f", wf.SpeedRanksPerPeriod),
		})
	}
	fmt.Print(viz.Table([]string{"stencil", "βκ", "speed [ranks/period]"}, rows))
	fmt.Println("\nLarger βκ — via protocol, wait mode, or stencil reach — makes the")
	fmt.Println("system stiffer and the idle wave faster, §5.1.1.")
}
