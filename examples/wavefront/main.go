// Wavefront: reproduce the computational-wavefront formation of
// memory-bound programs (paper §5.2.2) twice — once in the oscillator
// model with the desynchronizing potential, once in the MPI cluster
// simulator running STREAM on a saturated Meggie socket — and compare the
// two broken-symmetry states.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/pom"
)

func main() {
	log.SetFlags(0)

	const n = 20
	const sigma = 1.5

	// --- Oscillator model side -----------------------------------------
	cfg := pom.Bottlenecked(n, sigma)
	model, err := pom.NewModel(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := model.Run(400, 801)
	if err != nil {
		log.Fatal(err)
	}
	gaps := res.AsymptoticGaps(0.1)
	var mean float64
	for _, g := range gaps {
		mean += math.Abs(g)
	}
	mean /= float64(len(gaps))
	fmt.Printf("model: settled |adjacent gap| = %.4f rad (theory 2σ/3 = %.4f)\n",
		mean, 2*sigma/3)
	fmt.Printf("model: frequency locked = %v, asymptotic spread = %.2f rad\n",
		res.FrequencyLocked(0.2, 1e-2), res.AsymptoticSpread(0.1))

	// --- MPI trace side -------------------------------------------------
	tp, err := pom.NextNeighbor(n, false)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := pom.SimulateMPI(pom.Meggie(2), tp, pom.STREAM(), 300, 5, 50, 10)
	if err != nil {
		log.Fatal(err)
	}
	tr := sim.Trace
	dm, err := tr.MeasureDesync(sim.Makespan*0.75, sim.Makespan*0.97, 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMPI: residual wavefront spread = %.2f iterations, adjacent skew = %.3f\n",
		dm.Spread, dm.MeanAbsAdjacent)
	fmt.Printf("MPI: socket bandwidth pinned at %.1f GB/s (Meggie limit 53)\n",
		sim.AggregateBandwidth(0)/1e9)
	fmt.Println("\nBoth substrates settle in a stable desynchronized state after the")
	fmt.Println("idle wave decays — the computational wavefront of Fig. 2(b).")
}
