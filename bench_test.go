// Package repro_test is the benchmark harness that regenerates every
// table and figure of the paper's evaluation (experiments E1–E7, see
// DESIGN.md) under testing.B, plus the ablations DESIGN.md calls out.
// Custom metrics report the headline physical quantities next to the
// runtime cost, so `go test -bench=. -benchmem` doubles as the
// reproduction run.
package repro_test

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/kernels"
	"repro/internal/noise"
	"repro/internal/ode"
	"repro/internal/potential"
	"repro/internal/sweep"
	"repro/internal/topology"
)

// BenchmarkFig1aPotentials regenerates Fig. 1(a): the two interaction
// potential curves and the desync potential's first zero at 2σ/3.
func BenchmarkFig1aPotentials(b *testing.B) {
	b.ReportAllocs()
	var zero float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1aPotentials(5, 512)
		if err != nil {
			b.Fatal(err)
		}
		zero = res.Rows[1].MeasuredZero
	}
	b.ReportMetric(zero, "desync-zero")
}

// BenchmarkFig1bScalability regenerates Fig. 1(b): socket bandwidth
// scaling of STREAM, slow Schönauer, and PISOLVER on the Meggie model.
func BenchmarkFig1bScalability(b *testing.B) {
	b.ReportAllocs()
	var streamSat float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1bScalability(cluster.Meggie(1), 10, 3)
		if err != nil {
			b.Fatal(err)
		}
		streamSat = float64(res.Curves[0].SaturationProcs)
	}
	b.ReportMetric(streamSat, "stream-sat-cores")
}

// BenchmarkFig2Scalable regenerates Fig. 2(a): scalable code, ±1
// stencil — idle wave propagation, decay, and resynchronization in both
// the MPI simulator and the oscillator model.
func BenchmarkFig2Scalable(b *testing.B) {
	b.ReportAllocs()
	var speed float64
	for i := 0; i < b.N; i++ {
		row, err := experiments.RunFig2Panel(experiments.DefaultFig2([]int{-1, 1}, true))
		if err != nil {
			b.Fatal(err)
		}
		speed = row.MPI.WaveSpeed
	}
	b.ReportMetric(speed, "mpi-ranks/iter")
}

// BenchmarkFig2ScalableStiff regenerates Fig. 2(c): the d=±1,−2 stencil.
func BenchmarkFig2ScalableStiff(b *testing.B) {
	b.ReportAllocs()
	var speed float64
	for i := 0; i < b.N; i++ {
		row, err := experiments.RunFig2Panel(experiments.DefaultFig2([]int{-2, -1, 1}, true))
		if err != nil {
			b.Fatal(err)
		}
		speed = row.MPI.WaveSpeed
	}
	b.ReportMetric(speed, "mpi-ranks/iter")
}

// BenchmarkFig2Bottlenecked regenerates Fig. 2(b): memory-bound code —
// idle wave plus residual computational wavefront with gaps at 2σ/3.
func BenchmarkFig2Bottlenecked(b *testing.B) {
	b.ReportAllocs()
	var gap float64
	for i := 0; i < b.N; i++ {
		row, err := experiments.RunFig2Panel(experiments.DefaultFig2([]int{-1, 1}, false))
		if err != nil {
			b.Fatal(err)
		}
		gap = row.Model.MeanAbsGap
	}
	b.ReportMetric(gap, "model-gap-rad")
}

// BenchmarkFig2BottleneckedStiff regenerates Fig. 2(d).
func BenchmarkFig2BottleneckedStiff(b *testing.B) {
	b.ReportAllocs()
	var gap float64
	for i := 0; i < b.N; i++ {
		row, err := experiments.RunFig2Panel(experiments.DefaultFig2([]int{-2, -1, 1}, false))
		if err != nil {
			b.Fatal(err)
		}
		gap = row.Model.MeanAbsGap
	}
	b.ReportMetric(gap, "model-gap-rad")
}

// BenchmarkWaveSpeedVsCoupling regenerates the §5.1.1 sweep: idle-wave
// speed against βκ, plus the eager/rendezvous contrast.
func BenchmarkWaveSpeedVsCoupling(b *testing.B) {
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.WaveSpeedVsCoupling([]float64{0, 1, 4})
		if err != nil {
			b.Fatal(err)
		}
		if res.Model[1].Speed > 0 {
			ratio = res.Model[2].Speed / res.Model[1].Speed
		}
	}
	b.ReportMetric(ratio, "speed4/speed1")
}

// BenchmarkStiffnessSweep regenerates the §5.2.2 claims: settled gaps
// track 2σ/3 and the stiffer topology speeds up delay propagation while
// shrinking the phase gaps.
func BenchmarkStiffnessSweep(b *testing.B) {
	b.ReportAllocs()
	var speedRatio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.StiffnessSweep([]float64{1, 2})
		if err != nil {
			b.Fatal(err)
		}
		speedRatio = res.Stiffness.MPISpeedRatio
	}
	b.ReportMetric(speedRatio, "mpi-speed-ratio")
}

// BenchmarkKuramotoBaseline regenerates the §2.2.2 baseline: the
// synchronization transition, phase slips, and the all-to-all barrier
// effect the paper rejects.
func BenchmarkKuramotoBaseline(b *testing.B) {
	b.ReportAllocs()
	var slips float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.KuramotoBaseline([]float64{0.2, 4.0})
		if err != nil {
			b.Fatal(err)
		}
		slips = float64(res.WeakCouplingSlips)
	}
	b.ReportMetric(slips, "phase-slips")
}

// BenchmarkNoiseDecay regenerates E8: idle-wave decay lengths under
// background noise in both substrates (the §6 open question).
func BenchmarkNoiseDecay(b *testing.B) {
	b.ReportAllocs()
	var loudLen float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.NoiseDecay([]float64{0, 0.6})
		if err != nil {
			b.Fatal(err)
		}
		loudLen = res.Points[1].MPIDecayLen
	}
	b.ReportMetric(loudLen, "mpi-decay-ranks")
}

// BenchmarkCollectiveBarrier regenerates E9: a per-iteration Allreduce
// delivers an injected delay to every rank at once, vs the traveling wave
// of point-to-point exchange (§2.2.2 trace-side evidence).
func BenchmarkCollectiveBarrier(b *testing.B) {
	b.ReportAllocs()
	var spread float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.CollectiveBarrier()
		if err != nil {
			b.Fatal(err)
		}
		spread = res.CollectiveArrivalSpreadIters
	}
	b.ReportMetric(spread, "collective-spread-iters")
}

// BenchmarkFig1bSuperMUCNG regenerates the artifact-appendix variant of
// Fig. 1(b) on the SuperMUC-NG machine model (24-core Skylake,
// 100 GB/s sockets).
func BenchmarkFig1bSuperMUCNG(b *testing.B) {
	b.ReportAllocs()
	var streamSat float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1bScalability(cluster.SuperMUCNG(1), 24, 3)
		if err != nil {
			b.Fatal(err)
		}
		streamSat = float64(res.Curves[0].SaturationProcs)
	}
	b.ReportMetric(streamSat, "stream-sat-cores")
}

// --- Hot-path micro-benchmarks ------------------------------------------

// baselineRHS is a faithful transcription of the pre-change
// core.Model.rhs: [][]int neighbor lists, one interface dispatch per
// (i, j) pair, per-pair delay checks, and a per-oscillator noise call
// plus division. It is the reference the flat-CSR/batched speedup is
// measured against.
type baselineRHS struct {
	neighbors [][]int
	pot       potential.Potential
	local     noise.Local
	inoise    noise.Interaction
	period    float64
	vp, gain  float64
	n         int
}

func (m *baselineRHS) zeta(i int, t float64) float64 {
	if m.local == nil {
		return 0
	}
	z := m.local.Zeta(i, t)
	if z < -0.9*m.period {
		z = -0.9 * m.period
	}
	return z
}

func (m *baselineRHS) rhs(t float64, y []float64, past ode.Past, dydt []float64) {
	k := m.vp * m.gain / float64(m.n)
	inoise := m.inoise
	for i := range y {
		freq := 2 * math.Pi / (m.period + m.zeta(i, t))
		var coupling float64
		for _, j := range m.neighbors[i] {
			thj := y[j]
			if past != nil && inoise != nil {
				if tau := inoise.Tau(i, j, t); tau > 0 {
					thj = past.Eval(j, t-tau)
				}
			}
			coupling += m.pot.Eval(thj - y[i])
		}
		dydt[i] = freq + k*coupling
	}
}

// benchRHSModel builds the N-oscillator sine-potential ring shared by the
// BenchmarkRHS* variants.
func benchRHSModel(b *testing.B, n, workers int) (*core.Model, []float64, []float64) {
	b.Helper()
	tp, err := topology.NextNeighbor(n, true)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.New(core.Config{
		N: n, TComp: 0.8, TComm: 0.2,
		Potential: potential.KuramotoSine{},
		Topology:  tp,
		Workers:   workers,
	})
	if err != nil {
		b.Fatal(err)
	}
	y := make([]float64, n)
	for i := range y {
		y[i] = 0.01 * float64(i)
	}
	return m, y, make([]float64, n)
}

// BenchmarkRHSBaseline1024 measures the pre-change interface-dispatch
// right-hand side on the N=1024 sine-potential ring — the reference the
// acceptance criterion's ≥2x speedup is counted from.
func BenchmarkRHSBaseline1024(b *testing.B) {
	m, y, dydt := benchRHSModel(b, 1024, 1)
	tp, err := topology.NextNeighbor(1024, true)
	if err != nil {
		b.Fatal(err)
	}
	base := &baselineRHS{
		neighbors: tp.Neighbors(),
		pot:       potential.KuramotoSine{},
		period:    1.0,
		vp:        m.Vp(),
		gain:      float64(m.N()),
		n:         m.N(),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base.rhs(0, y, nil, dydt)
	}
}

// BenchmarkRHSFlat1024 measures the flat-CSR, batch-potential right-hand
// side on the same system (serial).
func BenchmarkRHSFlat1024(b *testing.B) {
	m, y, dydt := benchRHSModel(b, 1024, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EvalRHS(0, y, dydt)
	}
}

// BenchmarkRHSFlatWorkers1024 measures the same right-hand side with the
// persistent 4-worker pool (Config.Workers), which must stay bit-for-bit
// identical to the serial result.
func BenchmarkRHSFlatWorkers1024(b *testing.B) {
	m, y, dydt := benchRHSModel(b, 1024, 4)
	defer m.Close()
	m.EvalRHS(0, y, dydt) // start the pool outside the timed region
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EvalRHS(0, y, dydt)
	}
}

// BenchmarkRHSFlat8192Workers scales the parallel path up to N=8192,
// where the per-call fan-out cost is fully amortized.
func BenchmarkRHSFlat8192Workers(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			m, y, dydt := benchRHSModel(b, 8192, workers)
			defer m.Close()
			m.EvalRHS(0, y, dydt)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.EvalRHS(0, y, dydt)
			}
		})
	}
}

// BenchmarkEngineEager measures the pooled event engine on the 40-rank
// eager-protocol STREAM exchange: value-typed heap, dense channel array,
// recycled requests and compute tasks.
func BenchmarkEngineEager(b *testing.B) {
	benchEngine(b, 1024)
}

// BenchmarkEngineRendezvous is BenchmarkEngineEager above the eager
// threshold, exercising the handshake path and its request recycling.
func BenchmarkEngineRendezvous(b *testing.B) {
	benchEngine(b, 1<<20)
}

func benchEngine(b *testing.B, msgBytes float64) {
	tp, err := topology.NextNeighbor(40, false)
	if err != nil {
		b.Fatal(err)
	}
	k := kernels.STREAM()
	progs, err := cluster.BulkSynchronous(tp, k.Workload(), msgBytes, 200)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var events int
	for i := 0; i < b.N; i++ {
		sim, err := cluster.NewSim(cluster.Meggie(4), progs, cluster.Options{})
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/s")
	}
}

// --- Ablations ----------------------------------------------------------

// BenchmarkAblationKappaRule contrasts the κ aggregation rules of §3.1:
// grouped MPI_Waitall (κ = max|d|) halves the coupling of the ±1,−2
// stencil relative to separate waits (κ = Σ|d|), slowing the idle wave.
func BenchmarkAblationKappaRule(b *testing.B) {
	run := func(mode topology.WaitMode) float64 {
		tp, err := topology.Stencil(32, []int{-2, -1, 1}, true)
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.Config{
			N: 32, TComp: 0.8, TComm: 0.2,
			Potential:  potential.Tanh{},
			Topology:   tp,
			WaitMode:   mode,
			LocalNoise: noise.Delay{Rank: 16, Start: 10, Duration: 2, Extra: 100},
		}
		m, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := m.Run(120, 1201)
		if err != nil {
			b.Fatal(err)
		}
		wf, err := res.MeasureWave(16, 10, 0.15)
		if err != nil {
			b.Fatal(err)
		}
		return wf.SpeedRanksPerPeriod
	}
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		sep := run(topology.SeparateWaits)  // κ = 4
		grp := run(topology.GroupedWaitall) // κ = 2
		ratio = sep / grp
	}
	b.ReportMetric(ratio, "separate/grouped")
}

// BenchmarkAblationNoiseDecay contrasts idle-wave decay with and without
// background system noise (§5.1.1: waves interact nonlinearly with noise
// and decay faster).
func BenchmarkAblationNoiseDecay(b *testing.B) {
	resync := func(jitter float64) float64 {
		cfg := core.Config{
			N: 24, TComp: 0.8, TComm: 0.2,
			Potential: potential.Tanh{},
		}
		tp, err := topology.NextNeighbor(24, true)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Topology = tp
		local := noise.Sum{noise.Delay{Rank: 12, Start: 10, Duration: 2, Extra: 100}}
		if jitter > 0 {
			local = append(local, noise.Jitter{
				Dist: noise.Gaussian, Amp: jitter, Refresh: 1, Seed: 9,
			})
		}
		cfg.LocalNoise = local
		m, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := m.Run(150, 751)
		if err != nil {
			b.Fatal(err)
		}
		// Residual spread 30 periods after the delay window measures how
		// much of the wave survives.
		spread := res.SpreadTimeline()
		for k, t := range res.Ts {
			if t >= 42 {
				return spread[k]
			}
		}
		return spread[len(spread)-1]
	}
	b.ReportAllocs()
	var silent, noisy float64
	for i := 0; i < b.N; i++ {
		silent = resync(0)
		noisy = resync(0.05)
	}
	b.ReportMetric(silent, "spread-silent")
	b.ReportMetric(noisy, "spread-noisy")
}

// BenchmarkAblationSolver contrasts the adaptive DOPRI5 used by the paper
// (MATLAB ode45) with fixed-step RK4 at matched accuracy on a POM-like
// system: the adaptive solver needs far fewer evaluations per period.
func BenchmarkAblationSolver(b *testing.B) {
	tp, err := topology.NextNeighbor(16, true)
	if err != nil {
		b.Fatal(err)
	}
	nb := tp.Neighbors()
	pot := potential.Tanh{}
	rhs := func(_ float64, y, dydt []float64) {
		for i := range y {
			var c float64
			for _, j := range nb[i] {
				c += pot.Eval(y[j] - y[i])
			}
			dydt[i] = 6.28 + 2*c
		}
	}
	y0 := make([]float64, 16)
	y0[5] = -2
	b.Run("dopri5", func(b *testing.B) {
		b.ReportAllocs()
		var evals float64
		for i := 0; i < b.N; i++ {
			s := ode.NewDOPRI5(1e-8, 1e-8)
			res, err := s.Solve(rhs, y0, 0, 50, ode.SolveOptions{SampleTs: []float64{50}})
			if err != nil {
				b.Fatal(err)
			}
			evals = float64(res.Stats.Evals)
		}
		b.ReportMetric(evals, "rhs-evals")
	})
	b.Run("rk4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st := &ode.RK4{}
			if _, err := ode.FixedSolve(rhs, st, y0, 0, 50, 1e-3, 1<<30); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMPISimulatorThroughput measures raw DES performance: events
// per second for a 40-rank STREAM run — the substrate cost of every
// trace-side experiment.
func BenchmarkMPISimulatorThroughput(b *testing.B) {
	tp, err := topology.NextNeighbor(40, false)
	if err != nil {
		b.Fatal(err)
	}
	k := kernels.STREAM()
	progs, err := cluster.BulkSynchronous(tp, k.Workload(), 1024, 100)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var events float64
	for i := 0; i < b.N; i++ {
		sim, err := cluster.NewSim(cluster.Meggie(4), progs, cluster.Options{})
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		events = float64(res.Events)
	}
	b.ReportMetric(events, "events/run")
}

// BenchmarkPOMIntegration measures the oscillator-model integration cost
// for the paper's 40-rank configuration.
func BenchmarkPOMIntegration(b *testing.B) {
	tp, err := topology.NextNeighbor(40, false)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{
		N: 40, TComp: 0.8, TComm: 0.2,
		Potential: potential.Tanh{},
		Topology:  tp,
	}
	m, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(100, 101); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSweepConfig is the per-point model of the streaming-sweep
// benchmarks: a small desynchronizing chain, cheap enough that the
// memory-model difference dominates the signal. It returns rather than
// b.Fatal-s the error because it runs on sweep worker goroutines, where
// FailNow's Goexit would kill the worker instead of failing the sweep.
func benchSweepConfig(sigma float64) (core.Config, error) {
	tp, err := topology.NextNeighbor(8, false)
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{
		N: 8, TComp: 0.8, TComm: 0.2,
		Potential:   potential.NewDesync(sigma),
		Topology:    tp,
		Init:        core.RandomPhases,
		PerturbSeed: 5,
		PerturbAmp:  0.02,
	}, nil
}

// BenchmarkSweepBytesPerPoint contrasts the two sweep memory models on an
// identical 16-point σ sweep. "materialized" retains each point's
// *core.Result (trajectory rows) the way a pre-streaming sweep had to;
// "streamed" runs each point through core.Model.RunStream and keeps only
// the O(N) Summary. The B/point metric (heap bytes allocated per sweep
// point) grows linearly with samples in materialized mode and stays flat
// in streamed mode — the O(1)-in-nSamples evidence the ROADMAP's
// million-scenario sweeps rest on.
func BenchmarkSweepBytesPerPoint(b *testing.B) {
	const nPoints = 16
	sigmas := make([]float64, nPoints)
	for i := range sigmas {
		sigmas[i] = 0.8 + 1.2*float64(i)/float64(nPoints-1)
	}
	for _, nSamples := range []int{201, 2001} {
		b.Run(fmt.Sprintf("materialized/samples%d", nSamples), func(b *testing.B) {
			b.ReportAllocs()
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			for i := 0; i < b.N; i++ {
				pts, err := sweep.Run(context.Background(), sigmas, 4,
					func(_ context.Context, sigma float64) (*core.Result, error) {
						cfg, err := benchSweepConfig(sigma)
						if err != nil {
							return nil, err
						}
						m, err := core.New(cfg)
						if err != nil {
							return nil, err
						}
						return m.Run(60, nSamples)
					})
				if err != nil {
					b.Fatal(err)
				}
				// Touch the retained trajectories like a post-processing
				// pass would.
				for _, pt := range pts {
					if len(pt.Result.Theta) != nSamples {
						b.Fatalf("point %d: %d rows", pt.Index, len(pt.Result.Theta))
					}
				}
			}
			runtime.ReadMemStats(&ms1)
			b.ReportMetric(float64(ms1.TotalAlloc-ms0.TotalAlloc)/float64(b.N*nPoints), "B/point")
		})
		b.Run(fmt.Sprintf("streamed/samples%d", nSamples), func(b *testing.B) {
			b.ReportAllocs()
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			for i := 0; i < b.N; i++ {
				sums := make([]*core.Summary, nPoints)
				err := sweep.RunReduce(context.Background(), nPoints, 4,
					func(i int) float64 { return sigmas[i] },
					func(_ context.Context, sigma float64) (*core.Summary, error) {
						cfg, err := benchSweepConfig(sigma)
						if err != nil {
							return nil, err
						}
						m, err := core.New(cfg)
						if err != nil {
							return nil, err
						}
						return m.RunSummary(60, nSamples, 0.1, 0.15)
					},
					func(i int, _ float64, s *core.Summary) { sums[i] = s })
				if err != nil {
					b.Fatal(err)
				}
				for i, s := range sums {
					if s == nil {
						b.Fatalf("point %d missing", i)
					}
				}
			}
			runtime.ReadMemStats(&ms1)
			b.ReportMetric(float64(ms1.TotalAlloc-ms0.TotalAlloc)/float64(b.N*nPoints), "B/point")
		})
	}
}
